/**
 * @file
 * v5 -> v6 migration: a seeded old-layout (`v5-e5/<hash>.bin`)
 * directory is absorbed into the segment store on construction.
 * Intact entries survive byte-exactly; damaged ones are cleanly
 * orphaned and counted; foreign-engine layouts are left alone.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "exec/disk_cache.h"
#include "fault/cache_faults.h"
#include "scenarios/scenario.h"
#include "sim/metrics.h"

namespace smartconf::exec {
namespace {

namespace fs = std::filesystem;

class StoreMigrationTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root_ = (fs::temp_directory_path() /
                 ("smartconf-migrate-test-" +
                  std::to_string(::testing::UnitTest::GetInstance()
                                     ->random_seed()) +
                  "-" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()))
                    .string();
        fs::remove_all(root_);
    }
    void TearDown() override { fs::remove_all(root_); }

    static scenarios::ScenarioResult resultFor(int i)
    {
        scenarios::ScenarioResult r;
        r.scenario_id = "HB3813";
        r.policy_label = "SmartConf";
        r.goal_value = 100.0 + i;
        r.tradeoff = 7.0 * i;
        r.ops_simulated = static_cast<std::uint64_t>(1000 + i);
        r.perf_series = sim::TimeSeries("m");
        for (int t = 0; t < 50; ++t)
            r.perf_series.record(t, i + 0.5 * t);
        r.conf_series = sim::TimeSeries("c");
        r.tradeoff_series = sim::TimeSeries("t");
        return r;
    }

    /** Write one v5-layout entry file exactly as format 5 did. */
    static void writeV5Entry(const std::string &dir,
                             const std::string &key,
                             const scenarios::ScenarioResult &r,
                             std::uint32_t engine =
                                 DiskRunCache::kEngineVersion)
    {
        fs::create_directories(dir);
        const std::vector<char> payload =
            DiskRunCache::serializeResult(r);
        std::string head;
        head.append("SCRC", 4);
        const std::uint32_t fmt = DiskRunCache::kLegacyFormatVersion;
        head.append(reinterpret_cast<const char *>(&fmt), 4);
        head.append(reinterpret_cast<const char *>(&engine), 4);
        const std::uint64_t klen = key.size();
        head.append(reinterpret_cast<const char *>(&klen), 8);
        head += key;
        const std::uint64_t sum = DiskRunCache::checksum64(
            payload.data(), payload.size());
        head.append(reinterpret_cast<const char *>(&sum), 8);

        char hex[17];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(
                          DiskRunCache::fnv1a(key)));
        std::FILE *f = std::fopen(
            (dir + "/" + hex + ".bin").c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(head.data(), 1, head.size(), f),
                  head.size());
        ASSERT_EQ(std::fwrite(payload.data(), 1, payload.size(), f),
                  payload.size());
        ASSERT_EQ(std::fclose(f), 0);
    }

    std::string root_;
};

TEST_F(StoreMigrationTest, IntactV5EntriesSurviveMigration)
{
    const std::string legacy = DiskRunCache::legacyDir(root_);
    for (int i = 0; i < 10; ++i)
        writeV5Entry(legacy, "key-" + std::to_string(i),
                     resultFor(i));

    DiskRunCache cache(root_);
    EXPECT_EQ(cache.migratedEntries(), 10u);
    EXPECT_EQ(cache.orphanedEntries(), 0u);
    for (int i = 0; i < 10; ++i) {
        scenarios::ScenarioResult out;
        ASSERT_TRUE(cache.load("key-" + std::to_string(i), out)) << i;
        EXPECT_EQ(out.goal_value, 100.0 + i);
        EXPECT_EQ(out.ops_simulated,
                  static_cast<std::uint64_t>(1000 + i));
        ASSERT_EQ(out.perf_series.size(), 50u);
        EXPECT_EQ(out.perf_series.points()[7].value, i + 3.5);
    }
    // The old layout is retired: a second construction re-migrates
    // nothing.
    EXPECT_FALSE(fs::exists(legacy));
    EXPECT_TRUE(fs::exists(legacy + ".migrated"));
    DiskRunCache again(root_);
    EXPECT_EQ(again.migratedEntries(), 0u);
    scenarios::ScenarioResult out;
    EXPECT_TRUE(again.load("key-3", out));
}

TEST_F(StoreMigrationTest, DamagedV5EntriesAreOrphanedWithCount)
{
    const std::string legacy = DiskRunCache::legacyDir(root_);
    for (int i = 0; i < 6; ++i)
        writeV5Entry(legacy, "key-" + std::to_string(i),
                     resultFor(i));
    // Damage two: one bit flip in a payload, one truncation.
    const std::vector<std::string> files =
        fault::listEntryFiles(legacy);
    ASSERT_EQ(files.size(), 6u);
    ASSERT_TRUE(fault::flipBit(files[1], 200, 4));
    ASSERT_TRUE(fault::truncateFile(
        files[4],
        static_cast<std::uint64_t>(fault::fileSize(files[4])) / 3));

    DiskRunCache cache(root_);
    EXPECT_EQ(cache.migratedEntries(), 4u);
    EXPECT_EQ(cache.orphanedEntries(), 2u);

    int hits = 0;
    for (int i = 0; i < 6; ++i) {
        scenarios::ScenarioResult out;
        if (cache.load("key-" + std::to_string(i), out)) {
            ++hits;
            EXPECT_EQ(out.goal_value, 100.0 + i)
                << "a damaged v5 entry migrated into a wrong result";
        }
    }
    EXPECT_EQ(hits, 4);
}

TEST_F(StoreMigrationTest, ForeignEngineV5LayoutIsLeftAlone)
{
    // v5 files for an *older engine* are stale by definition: the
    // migration must not absorb them, and must not delete them either
    // (directory-name versioning orphans them wholesale).
    const std::string foreign =
        root_ + "/v5-e" +
        std::to_string(DiskRunCache::kEngineVersion - 1);
    writeV5Entry(foreign, "stale-key", resultFor(1),
                 DiskRunCache::kEngineVersion - 1);

    DiskRunCache cache(root_);
    EXPECT_EQ(cache.migratedEntries(), 0u);
    scenarios::ScenarioResult out;
    EXPECT_FALSE(cache.load("stale-key", out));
    EXPECT_TRUE(fs::exists(foreign)) << "foreign layout was touched";
}

TEST_F(StoreMigrationTest, MixedLayoutMigratesAndKeepsNewWrites)
{
    const std::string legacy = DiskRunCache::legacyDir(root_);
    writeV5Entry(legacy, "old-key", resultFor(1));

    DiskRunCache cache(root_);
    EXPECT_EQ(cache.migratedEntries(), 1u);
    ASSERT_TRUE(cache.store("new-key", resultFor(2)));
    ASSERT_TRUE(cache.flush());

    DiskRunCache fresh(root_);
    scenarios::ScenarioResult out;
    ASSERT_TRUE(fresh.load("old-key", out));
    EXPECT_EQ(out.goal_value, 101.0);
    ASSERT_TRUE(fresh.load("new-key", out));
    EXPECT_EQ(out.goal_value, 102.0);
}

} // namespace
} // namespace smartconf::exec
