/**
 * @file
 * SegmentStore unit coverage: the segment format itself, put/get
 * round-trips, sealing thresholds, rescan-based cross-instance
 * visibility, compaction (dedup, level bump, input unlinking),
 * manifest atomicity, verify, and the corruption contract at segment
 * granularity (torn tail, flipped index page, forged hash collision).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "fault/cache_faults.h"
#include "store/query.h"
#include "store/segment.h"
#include "store/segment_store.h"

namespace smartconf::store {
namespace {

namespace fs = std::filesystem;

class SegmentStoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("smartconf-store-test-" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "-" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    static SegmentStore::Options quiet(std::size_t flush_entries = 4)
    {
        SegmentStore::Options o;
        o.auto_compact = false;
        o.flush_entries = flush_entries;
        return o;
    }

    static std::string payloadFor(int i)
    {
        std::string p = "payload-" + std::to_string(i) + "-";
        p.append(static_cast<std::size_t>(17 + i % 31), 'x');
        return p;
    }

    static bool putStr(SegmentStore &s, const std::string &key,
                       const std::string &payload)
    {
        return s.put(key, payload.data(), payload.size(),
                     blockChecksum(payload.data(), payload.size()));
    }

    static std::string keyFor(int i)
    {
        return "scn" + std::to_string(i % 3) + "|policy|s=" +
               std::to_string(i);
    }

    std::string dir_;
};

TEST_F(SegmentStoreTest, PutGetRoundTripsThroughPendingAndSealed)
{
    SegmentStore s(dir_, quiet(4));
    ASSERT_TRUE(putStr(s, "k1", "hello"));
    std::vector<char> out;
    ASSERT_TRUE(s.get("k1", out)) << "read-your-writes from pending";
    EXPECT_EQ(std::string(out.begin(), out.end()), "hello");

    ASSERT_TRUE(s.flush());
    ASSERT_TRUE(s.get("k1", out)) << "read after seal";
    EXPECT_EQ(std::string(out.begin(), out.end()), "hello");
    EXPECT_FALSE(s.get("missing", out));
}

TEST_F(SegmentStoreTest, SealsAtEntryThresholdWithoutExplicitFlush)
{
    SegmentStore s(dir_, quiet(4));
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(putStr(s, keyFor(i), payloadFor(i)));
    // 16 entries with threshold 4 must have published something even
    // before flush() — exact counts depend on shard distribution.
    EXPECT_GT(s.stats().segments_published, 0u);
    ASSERT_TRUE(s.flush());
    for (int i = 0; i < 16; ++i) {
        std::vector<char> out;
        ASSERT_TRUE(s.get(keyFor(i), out)) << keyFor(i);
        EXPECT_EQ(std::string(out.begin(), out.end()), payloadFor(i));
    }
}

TEST_F(SegmentStoreTest, DuplicatePutOverwritesInPendingBuffer)
{
    SegmentStore s(dir_, quiet(64));
    ASSERT_TRUE(putStr(s, "k", "old"));
    ASSERT_TRUE(putStr(s, "k", "new"));
    std::vector<char> out;
    ASSERT_TRUE(s.get("k", out));
    EXPECT_EQ(std::string(out.begin(), out.end()), "new");
    EXPECT_EQ(s.stats().pending_entries, 1u);
}

TEST_F(SegmentStoreTest, FreshInstanceSeesPublishedSegments)
{
    {
        SegmentStore w(dir_, quiet());
        for (int i = 0; i < 12; ++i)
            ASSERT_TRUE(putStr(w, keyFor(i), payloadFor(i)));
        ASSERT_TRUE(w.flush());
    }
    SegmentStore r(dir_, quiet());
    for (int i = 0; i < 12; ++i) {
        std::vector<char> out;
        ASSERT_TRUE(r.get(keyFor(i), out)) << keyFor(i);
        EXPECT_EQ(std::string(out.begin(), out.end()), payloadFor(i));
    }
}

TEST_F(SegmentStoreTest, RescanPicksUpSegmentsPublishedByAPeer)
{
    SegmentStore reader(dir_, quiet());
    std::vector<char> out;
    EXPECT_FALSE(reader.get("k-late", out));
    {
        SegmentStore peer(dir_, quiet());
        ASSERT_TRUE(putStr(peer, "k-late", "from-peer"));
        ASSERT_TRUE(peer.flush());
    }
    // The miss-path rescan must discover the peer's segment without a
    // new reader instance.
    ASSERT_TRUE(reader.get("k-late", out));
    EXPECT_EQ(std::string(out.begin(), out.end()), "from-peer");
    EXPECT_GT(reader.stats().rescans, 0u);
}

TEST_F(SegmentStoreTest, CompactionMergesDedupsAndUnlinksInputs)
{
    SegmentStore s(dir_, quiet(2));
    // Several generations of the same keys: later puts supersede.
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(putStr(s, keyFor(i),
                               payloadFor(i + round * 100)));
        ASSERT_TRUE(s.flush());
    }
    const std::size_t before = s.segmentCount();
    ASSERT_GT(before, 1u);

    const CompactionResult cr = s.compact();
    EXPECT_GT(cr.shards_compacted, 0u);
    EXPECT_GT(cr.segments_in, cr.segments_out);
    EXPECT_LT(cr.entries_out, cr.entries_in) << "dedup did not happen";
    EXPECT_LE(s.segmentCount(), before);

    // Newest generation wins for every key.
    for (int i = 0; i < 8; ++i) {
        std::vector<char> out;
        ASSERT_TRUE(s.get(keyFor(i), out));
        EXPECT_EQ(std::string(out.begin(), out.end()),
                  payloadFor(i + 300));
    }
    // Compacted segments carry a bumped level.
    bool saw_level = false;
    for (const std::string &path :
         fault::listSegmentFiles(dir_)) {
        SegmentHeader h;
        ASSERT_TRUE(readSegmentHeader(path, h));
        if (h.level > 0)
            saw_level = true;
    }
    EXPECT_TRUE(saw_level);
    // And a fresh instance reads the post-compaction layout.
    SegmentStore r(dir_, quiet());
    std::vector<char> out;
    ASSERT_TRUE(r.get(keyFor(0), out));
    EXPECT_EQ(std::string(out.begin(), out.end()), payloadFor(300));
}

TEST_F(SegmentStoreTest, BackgroundCompactionTriggersAtThreshold)
{
    SegmentStore::Options o;
    o.flush_entries = 1;
    o.compact_min_segments = 4;
    o.auto_compact = true;
    o.shard_count = 1; // all keys in one shard: threshold is exact
    SegmentStore s(dir_, o);
    for (int i = 0; i < 12; ++i)
        ASSERT_TRUE(putStr(s, keyFor(i), payloadFor(i)));
    // The background thread owes us at least one merge; poll briefly.
    bool compacted = false;
    for (int spin = 0; spin < 200 && !compacted; ++spin) {
        compacted = s.stats().compactions > 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(compacted);
    for (int i = 0; i < 12; ++i) {
        std::vector<char> out;
        ASSERT_TRUE(s.get(keyFor(i), out)) << keyFor(i);
    }
}

TEST_F(SegmentStoreTest, CompactionRacingReadersNeverDropsAnEntry)
{
    SegmentStore s(dir_, quiet(1)); // one segment per put
    constexpr int kKeys = 32;
    for (int i = 0; i < kKeys; ++i)
        ASSERT_TRUE(putStr(s, keyFor(i), payloadFor(i)));
    ASSERT_TRUE(s.flush());

    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            std::vector<char> out;
            while (!stop.load()) {
                for (int i = 0; i < kKeys; ++i) {
                    if (!s.get(keyFor(i), out) ||
                        std::string(out.begin(), out.end()) !=
                            payloadFor(i))
                        failures.fetch_add(1);
                }
            }
        });
    }
    // Compact (twice — second is mostly a no-op) while readers hammer.
    (void)s.compact();
    (void)s.compact();
    stop.store(true);
    for (std::thread &th : readers)
        th.join();
    EXPECT_EQ(failures.load(), 0)
        << "a reader observed a miss or a wrong payload mid-compaction";
}

TEST_F(SegmentStoreTest, VerifyIsCleanOnAHealthyStore)
{
    SegmentStore s(dir_, quiet(4));
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(putStr(s, keyFor(i), payloadFor(i)));
    const VerifyResult v = s.verify();
    EXPECT_TRUE(v.clean());
    EXPECT_GT(v.segments_ok, 0u);
    EXPECT_EQ(v.entries_ok, 16u);
    EXPECT_EQ(v.entries_corrupt, 0u);
}

TEST_F(SegmentStoreTest, TruncatedSegmentTailDegradesToMissAndVerifyFlags)
{
    SegmentStore::Options one = quiet(64);
    one.shard_count = 1; // exactly one segment holds all 8 entries
    {
        SegmentStore w(dir_, one);
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(putStr(w, keyFor(i), payloadFor(i)));
        ASSERT_TRUE(w.flush());
    }
    const std::vector<std::string> segs = fault::listSegmentFiles(dir_);
    ASSERT_EQ(segs.size(), 1u);
    ASSERT_TRUE(fault::truncateSegmentTail(segs[0], 5));

    SegmentStore r(dir_, one);
    std::vector<char> out;
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(r.get(keyFor(i), out)) << keyFor(i);
    const VerifyResult v = r.verify();
    EXPECT_FALSE(v.clean());
    EXPECT_GT(v.segments_corrupt, 0u);
}

TEST_F(SegmentStoreTest, FlippedIndexPageRejectsWholeSegment)
{
    SegmentStore::Options one = quiet(64);
    one.shard_count = 1;
    {
        SegmentStore w(dir_, one);
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(putStr(w, keyFor(i), payloadFor(i)));
        ASSERT_TRUE(w.flush());
    }
    const std::vector<std::string> segs = fault::listSegmentFiles(dir_);
    ASSERT_EQ(segs.size(), 1u);
    ASSERT_TRUE(fault::flipIndexBit(segs[0], 11, 3));

    SegmentStore r(dir_, one);
    std::vector<char> out;
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(r.get(keyFor(i), out))
            << keyFor(i) << " served from a checksum-failing index";
    const VerifyResult v = r.verify();
    EXPECT_FALSE(v.clean());
}

TEST_F(SegmentStoreTest, TornManifestIsIgnoredReadsStillWork)
{
    {
        SegmentStore w(dir_, quiet(4));
        for (int i = 0; i < 8; ++i)
            ASSERT_TRUE(putStr(w, keyFor(i), payloadFor(i)));
        ASSERT_TRUE(w.flush());
    }
    ASSERT_TRUE(fault::tearManifest(dir_));
    Manifest m;
    EXPECT_FALSE(readManifest(dir_, m)) << "torn manifest parsed";

    // The listing is the source of truth: every entry still readable.
    SegmentStore r(dir_, quiet());
    std::vector<char> out;
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(r.get(keyFor(i), out)) << keyFor(i);
    // verify() reports the tear...
    VerifyResult v = r.verify();
    EXPECT_FALSE(v.manifest_ok);
    // ...and the next publish rewrites a good manifest.
    ASSERT_TRUE(putStr(r, "k-repair", "x"));
    ASSERT_TRUE(r.flush());
    EXPECT_TRUE(readManifest(dir_, m));
    EXPECT_TRUE(r.verify().manifest_ok);
}

TEST_F(SegmentStoreTest, ManifestRoundTripsAndRejectsTampering)
{
    fs::create_directories(dir_);
    Manifest m;
    m.format = 6;
    m.engine = 5;
    m.epoch = 42;
    m.segments.emplace_back("seg-00-0000000000000001-1.seg", 10);
    ASSERT_TRUE(writeManifest(dir_, m));
    Manifest back;
    ASSERT_TRUE(readManifest(dir_, back));
    EXPECT_EQ(back.format, 6u);
    EXPECT_EQ(back.engine, 5u);
    EXPECT_EQ(back.epoch, 42u);
    ASSERT_EQ(back.segments.size(), 1u);
    EXPECT_EQ(back.segments[0].second, 10u);

    // Flip one body byte: the trailer checksum must reject the file.
    ASSERT_TRUE(fault::flipBit(dir_ + "/MANIFEST", 3, 0));
    EXPECT_FALSE(readManifest(dir_, back));
}

TEST_F(SegmentStoreTest, ForgedHashCollisionStillMissesOnFullKey)
{
    // Surgery at the format level: rewrite the single index entry's
    // hash to the one "victim-key" would look up, fixing both
    // checksums so the segment parses cleanly.  The lookup must still
    // miss, because the full key in the blob says "real-key".
    {
        SegmentStore w(dir_, quiet(64));
        ASSERT_TRUE(putStr(w, "real-key", "data"));
        ASSERT_TRUE(w.flush());
    }
    const std::vector<std::string> segs = fault::listSegmentFiles(dir_);
    ASSERT_EQ(segs.size(), 1u);

    SegmentHeader h;
    ASSERT_TRUE(readSegmentHeader(segs[0], h));
    std::FILE *f = std::fopen(segs[0].c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::vector<char> block(h.index_len);
    ASSERT_EQ(std::fseek(f, static_cast<long>(h.index_off), SEEK_SET),
              0);
    ASSERT_EQ(std::fread(block.data(), 1, block.size(), f),
              block.size());
    IndexEntry e;
    std::memcpy(&e, block.data(), sizeof e);
    ASSERT_EQ(e.hash, fnv1a64(std::string("real-key")));
    e.hash = fnv1a64(std::string("victim-key"));
    std::memcpy(block.data(), &e, sizeof e);
    h.index_checksum = blockChecksum(block.data(), block.size());
    h.header_checksum = headerChecksum(h);
    ASSERT_EQ(std::fseek(f, static_cast<long>(h.index_off), SEEK_SET),
              0);
    ASSERT_EQ(std::fwrite(block.data(), 1, block.size(), f),
              block.size());
    ASSERT_EQ(std::fseek(f, 0, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&h, 1, kSegmentHeaderBytes, f),
              kSegmentHeaderBytes);
    ASSERT_EQ(std::fclose(f), 0);

    // Same shard only by luck of the mask — force a fresh store and
    // ask for the victim: full-key comparison must reject the forgery.
    SegmentStore::Options o = quiet();
    o.shard_count = 1; // every hash lands in the one shard
    SegmentStore r(dir_, o);
    std::vector<char> out;
    EXPECT_FALSE(r.get("victim-key", out))
        << "forged hash collision served a foreign payload";
}

TEST_F(SegmentStoreTest, SeedParsesFromRunKeys)
{
    std::uint64_t seed = 0;
    EXPECT_TRUE(SegmentStore::seedOfKey("a|b|s=42", seed));
    EXPECT_EQ(seed, 42u);
    EXPECT_TRUE(SegmentStore::seedOfKey("a|b:s=9|s=7", seed));
    EXPECT_EQ(seed, 7u);
    EXPECT_FALSE(SegmentStore::seedOfKey("a|b", seed));
    EXPECT_FALSE(SegmentStore::seedOfKey("a|b|s=", seed));
    EXPECT_FALSE(SegmentStore::seedOfKey("a|b|s=4x", seed));
}

TEST_F(SegmentStoreTest, ConcurrentPutsAndGetsKeepEveryEntry)
{
    SegmentStore s(dir_, quiet(16));
    constexpr int kPerThread = 64;
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const int id = t * kPerThread + i;
                const std::string p = payloadFor(id);
                ASSERT_TRUE(s.put("w|p|s=" + std::to_string(id),
                                  p.data(), p.size(),
                                  blockChecksum(p.data(), p.size())));
            }
        });
    }
    for (std::thread &th : writers)
        th.join();
    ASSERT_TRUE(s.flush());
    for (int id = 0; id < 4 * kPerThread; ++id) {
        std::vector<char> out;
        ASSERT_TRUE(s.get("w|p|s=" + std::to_string(id), out)) << id;
        EXPECT_EQ(std::string(out.begin(), out.end()), payloadFor(id));
    }
}

} // namespace
} // namespace smartconf::store
