/** @file Tenant archetypes and single-node tenant dynamics. */

#include <gtest/gtest.h>

#include "fleet/tenant.h"
#include "sim/rng.h"

namespace smartconf::fleet {
namespace {

TEST(FleetTenant, ArchetypesDeriveFromScenarioCatalog)
{
    const auto &archs = archetypes();
    ASSERT_EQ(archs.size(), 6u);
    EXPECT_EQ(archs[0].scenario_id, "CA6059");
    EXPECT_EQ(archs[5].scenario_id, "MR2820");
    for (const auto &a : archs) {
        EXPECT_FALSE(a.conf_name.empty());
        EXPECT_FALSE(a.metric.empty());
        // Fleet SLOs are contractual: every goal runs hard.
        EXPECT_TRUE(a.hard);
        EXPECT_DOUBLE_EQ(a.goal_value, 100.0);
        EXPECT_GT(a.conf_default, 0.0);
        EXPECT_DOUBLE_EQ(a.conf_max, 4.0 * a.conf_default);
        // The patched default contributes the same normalized metric
        // share for every archetype.
        EXPECT_NEAR(a.alpha * a.conf_default, 55.0, 1e-9);
        EXPECT_GT(a.pole, 0.0);
        EXPECT_LT(a.pole, 1.0);
    }
    // Capacity classes (metrics that sum across tenants) cluster;
    // latency classes stay local.
    EXPECT_TRUE(archs[0].capacity_class);  // CA6059 memory
    EXPECT_FALSE(archs[1].capacity_class); // HB2149 latency
    EXPECT_TRUE(archs[2].capacity_class);  // HB3813 memory
    EXPECT_TRUE(archs[3].capacity_class);  // HB6728 memory
    EXPECT_FALSE(archs[4].capacity_class); // HD4995 latency
    EXPECT_TRUE(archs[5].capacity_class);  // MR2820 disk
}

TEST(FleetTenant, SameSeedSameTrajectory)
{
    const sim::Rng base(42);
    TenantNode a(3, archetypes()[1], base, true);
    TenantNode b(3, archetypes()[1], base, true);
    for (sim::Tick t = 0; t < 50; ++t) {
        a.tick(t, 0.5);
        b.tick(t, 0.5);
        if ((t + 1) % 4 == 0) {
            a.controlTick();
            b.controlTick();
        }
        ASSERT_DOUBLE_EQ(a.localMetric(), b.localMetric());
        ASSERT_DOUBLE_EQ(a.conf(), b.conf());
    }
    EXPECT_EQ(a.foldChecksum(1), b.foldChecksum(1));
}

TEST(FleetTenant, DistinctIdsGetDistinctStreams)
{
    const sim::Rng base(42);
    TenantNode a(1, archetypes()[1], base, true);
    TenantNode b(2, archetypes()[1], base, true);
    a.tick(0, 0.5);
    b.tick(0, 0.5);
    EXPECT_NE(a.localMetric(), b.localMetric());
}

TEST(FleetTenant, StaticNodeKeepsDefaultConf)
{
    const sim::Rng base(9);
    TenantNode n(0, archetypes()[0], base, false);
    EXPECT_FALSE(n.smart());
    EXPECT_EQ(n.controller(), nullptr);
    for (sim::Tick t = 0; t < 30; ++t) {
        n.tick(t, 1.0);
        n.controlTick(); // no-op without a controller
    }
    EXPECT_DOUBLE_EQ(n.conf(), archetypes()[0].conf_default);
    EXPECT_EQ(n.stats().control_updates, 0u);
}

TEST(FleetTenant, ControllerTracksVirtualGoalUnderLoad)
{
    // A smart tenant under sustained heavy load must pull its conf
    // down (the plant warm-starts at the zero-load equilibrium, so
    // added load pushes the metric above the set-point) and end the
    // run with the metric near the virtual goal rather than above the
    // goal.
    const sim::Rng base(5);
    const TenantArchetype &arch = archetypes()[0];
    TenantNode n(0, arch, base, true);
    for (sim::Tick t = 0; t < 400; ++t) {
        n.tick(t, 500.0); // Zipf-head traffic, deep in the load bend
        if ((t + 1) % 4 == 0)
            n.controlTick();
    }
    EXPECT_LT(n.conf(), arch.conf_default);
    EXPECT_LT(n.localMetric(), arch.goal_value + 3.0 * arch.noise);
    EXPECT_GT(n.localMetric(), 0.5 * arch.goal_value);
    // Steady-state violations stay rare relative to the run length.
    EXPECT_LT(static_cast<double>(n.stats().violations) / 400.0, 0.2);
}

TEST(FleetTenant, ClusterBindingRetargetsViewAndGoal)
{
    const sim::Rng base(5);
    TenantNode n(0, archetypes()[0], base, true);
    Goal g;
    g.metric = "fleet/mem/0";
    g.value = 900.0;
    g.hard = true;
    g.superHard = true;
    n.bindCluster(g);
    EXPECT_TRUE(n.clustered());
    EXPECT_EQ(n.controller()->goal().metric, "fleet/mem/0");
    n.setClusterView(800.0);
    EXPECT_DOUBLE_EQ(n.metricView(), 800.0 + n.localMetric());
}

TEST(FleetTenant, StaticNodeIgnoresClusterBinding)
{
    const sim::Rng base(5);
    TenantNode n(0, archetypes()[0], base, false);
    Goal g;
    g.metric = "fleet/mem/0";
    g.value = 900.0;
    n.bindCluster(g);
    EXPECT_FALSE(n.clustered());
    EXPECT_DOUBLE_EQ(n.metricView(), n.localMetric());
}

} // namespace
} // namespace smartconf::fleet
