/** @file runFleet end-to-end invariants (single configuration). */

#include <gtest/gtest.h>

#include <stdexcept>

#include "fleet/fleet.h"

namespace smartconf::fleet {
namespace {

FleetParams
smallFleet()
{
    FleetParams p;
    p.tenants = 96; // 16 per archetype
    p.ticks = 60;
    p.epoch_ticks = 20;
    p.cluster_size = 8;
    p.seed = 11;
    return p;
}

TEST(FleetSim, RejectsDegenerateParams)
{
    FleetParams p = smallFleet();
    p.tenants = 0;
    EXPECT_THROW(runFleet(p), std::invalid_argument);
    p = smallFleet();
    p.epoch_ticks = 0;
    EXPECT_THROW(runFleet(p), std::invalid_argument);
    p = smallFleet();
    p.control_period = 0;
    EXPECT_THROW(runFleet(p), std::invalid_argument);
}

TEST(FleetSim, ClusterLayoutAndCoordinatorCost)
{
    // 96 tenants = 16 per archetype; the four capacity archetypes
    // contribute 48 memory tenants (6 clusters of 8) and 16 disk
    // tenants (2 clusters of 8).  Coordination cost is exact: every
    // member re-attaches once per epoch and receives one fan-out.
    const FleetResult r = runFleet(smallFleet());
    EXPECT_EQ(r.tenants, 96u);
    EXPECT_EQ(r.epochs, 3u);
    EXPECT_EQ(r.clusters, 8u);
    EXPECT_EQ(r.clustered_tenants, 64u);
    EXPECT_DOUBLE_EQ(r.max_interaction, 8.0);
    EXPECT_EQ(r.coord.epochs, 3u);
    EXPECT_EQ(r.coord.attach_calls, 64u * 3u);
    EXPECT_EQ(r.coord.fanouts, 64u * 3u);
    ASSERT_EQ(r.per_archetype.size(), 6u);
    std::uint64_t archetype_total = 0;
    for (const auto &row : r.per_archetype) {
        EXPECT_EQ(row.tenants, 16u);
        archetype_total += row.tenants;
    }
    EXPECT_EQ(archetype_total, r.tenants);
}

TEST(FleetSim, PartialTrailingClustersStillCoordinate)
{
    FleetParams p = smallFleet();
    p.tenants = 30; // 5 per archetype: memory 15 -> 1x8 + 7; disk 5
    const FleetResult r = runFleet(p);
    // 8-cluster + 7-trailing (memory) + 5-trailing (disk) = 3.
    EXPECT_EQ(r.clusters, 3u);
    EXPECT_EQ(r.clustered_tenants, 20u);
    EXPECT_DOUBLE_EQ(r.max_interaction, 8.0);
}

TEST(FleetSim, StaticBaselineHasNoCoordination)
{
    FleetParams p = smallFleet();
    p.smart = false;
    const FleetResult r = runFleet(p);
    EXPECT_EQ(r.clusters, 0u);
    EXPECT_EQ(r.clustered_tenants, 0u);
    EXPECT_EQ(r.coord.attach_calls, 0u);
    EXPECT_DOUBLE_EQ(r.max_interaction, 0.0);
    // Pinned confs: mean conf over the run is exactly the default.
    EXPECT_NEAR(r.mean_conf_rel, 1.0, 1e-12);
}

TEST(FleetSim, SmartFleetBeatsStaticDefaultsOnViolations)
{
    // The headline claim at bench scale: under Zipf-skewed traffic the
    // controllers keep violation rates below the pinned patch-default
    // baseline while running *higher* average configurations (the
    // throughput side of the paper's trade-off).
    FleetParams p;
    p.tenants = 1000;
    p.seed = 1;
    const FleetResult smart = runFleet(p);
    p.smart = false;
    const FleetResult pinned = runFleet(p);
    EXPECT_LT(smart.violation_rate_mean, pinned.violation_rate_mean);
    EXPECT_GT(smart.mean_conf_rel, 1.0);
    // Coordinated capacity clusters keep their aggregate promise in
    // steady state (transients during the first adaptation epochs are
    // allowed).
    EXPECT_LE(smart.coord.aggregate_violations,
              smart.coord.epochs * smart.clusters / 4);
}

TEST(FleetSim, ConvergenceWithinRun)
{
    const FleetResult r = runFleet(smallFleet());
    EXPECT_GE(r.convergence_p50_ticks, 1.0);
    EXPECT_LE(r.convergence_p50_ticks,
              static_cast<double>(r.ticks));
    EXPECT_GE(r.convergence_p99_ticks, r.convergence_p50_ticks);
}

TEST(FleetSim, SeedChangesResults)
{
    FleetParams p = smallFleet();
    const FleetResult a = runFleet(p);
    p.seed = 12;
    const FleetResult b = runFleet(p);
    EXPECT_NE(a.checksum, b.checksum);
}

} // namespace
} // namespace smartconf::fleet
