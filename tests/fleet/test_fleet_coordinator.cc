/** @file FleetCoordinator: epoch-batched cluster-goal coordination. */

#include <gtest/gtest.h>

#include "fleet/coordinator.h"
#include "fleet/tenant.h"
#include "sim/rng.h"

namespace smartconf::fleet {
namespace {

Goal
clusterGoal(double value, bool super_hard = true)
{
    Goal g;
    g.metric = "fleet/test/0";
    g.value = value;
    g.hard = true;
    g.superHard = super_hard;
    return g;
}

std::vector<TenantNode>
makeNodes(std::size_t n, bool smart = true)
{
    const sim::Rng base(7);
    std::vector<TenantNode> nodes;
    nodes.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        nodes.emplace_back(static_cast<std::uint32_t>(i),
                           archetypes()[0], base, smart);
    return nodes;
}

TEST(FleetCoordinator, JoinSetsInteractionFactorToMembership)
{
    FleetCoordinator coord;
    auto nodes = makeNodes(4);
    const std::size_t c = coord.addCluster(clusterGoal(400.0));
    for (auto &n : nodes)
        coord.join(c, &n);
    coord.runEpoch();
    for (auto &n : nodes)
        EXPECT_DOUBLE_EQ(n.controller()->params().interactionFactor,
                         4.0);
    EXPECT_DOUBLE_EQ(coord.maxInteractionFactor(), 4.0);
}

TEST(FleetCoordinator, RepeatedEpochsDoNotInflateN)
{
    // The membership heartbeat re-attaches every member every epoch;
    // with the pre-fix duplicate-attach bug N would grow by |cluster|
    // per epoch (12 epochs x 32 members = N 384 instead of 32),
    // silently dividing every controller's gain to nothing.
    FleetCoordinator coord;
    auto nodes = makeNodes(3);
    const std::size_t c = coord.addCluster(clusterGoal(300.0));
    for (auto &n : nodes)
        coord.join(c, &n);
    for (int epoch = 0; epoch < 5; ++epoch)
        coord.runEpoch();
    EXPECT_EQ(coord.stats().attach_calls, 15u); // 3 members x 5 epochs
    EXPECT_EQ(coord.registry().interactionCount("fleet/test/0"), 3u);
    for (auto &n : nodes)
        EXPECT_DOUBLE_EQ(n.controller()->params().interactionFactor,
                         3.0);
}

TEST(FleetCoordinator, FanOutInstallsFrozenSiblingSum)
{
    FleetCoordinator coord;
    auto nodes = makeNodes(3);
    const std::size_t c = coord.addCluster(clusterGoal(300.0));
    for (auto &n : nodes)
        coord.join(c, &n);
    coord.runEpoch();
    double aggregate = 0.0;
    for (const auto &n : nodes)
        aggregate += n.localMetric();
    for (auto &n : nodes)
        EXPECT_DOUBLE_EQ(n.metricView(), aggregate);
    EXPECT_EQ(coord.stats().fanouts, 3u);
}

TEST(FleetCoordinator, AggregateViolationsCounted)
{
    FleetCoordinator coord;
    auto nodes = makeNodes(2);
    // Warm-started nodes sit near base + alpha*default ~ 69 each; a
    // cluster goal of 10 is violated by the aggregate from epoch 0.
    const std::size_t c = coord.addCluster(clusterGoal(10.0));
    for (auto &n : nodes)
        coord.join(c, &n);
    coord.runEpoch();
    coord.runEpoch();
    EXPECT_EQ(coord.stats().aggregate_violations, 2u);
    EXPECT_EQ(coord.stats().epochs, 2u);
}

TEST(FleetCoordinator, SetSuperHardFlipRebalancesMidRun)
{
    // Exercises the declareGoal refresh fix through the fleet surface:
    // flipping the cluster goal's superHard flag between epochs must
    // rebalance every attached member immediately, both directions.
    FleetCoordinator coord;
    auto nodes = makeNodes(4);
    const std::size_t c = coord.addCluster(clusterGoal(400.0));
    for (auto &n : nodes)
        coord.join(c, &n);
    coord.runEpoch();
    ASSERT_DOUBLE_EQ(nodes[0].controller()->params().interactionFactor,
                     4.0);

    coord.setSuperHard(c, false);
    for (auto &n : nodes)
        EXPECT_DOUBLE_EQ(n.controller()->params().interactionFactor,
                         1.0);

    coord.setSuperHard(c, true);
    for (auto &n : nodes)
        EXPECT_DOUBLE_EQ(n.controller()->params().interactionFactor,
                         4.0);
}

TEST(FleetCoordinator, ClustersAreIndependent)
{
    FleetCoordinator coord;
    auto nodes = makeNodes(5);
    Goal g0 = clusterGoal(300.0);
    Goal g1 = clusterGoal(200.0);
    g1.metric = "fleet/test/1";
    const std::size_t c0 = coord.addCluster(g0);
    const std::size_t c1 = coord.addCluster(g1);
    for (std::size_t i = 0; i < 3; ++i)
        coord.join(c0, &nodes[i]);
    for (std::size_t i = 3; i < 5; ++i)
        coord.join(c1, &nodes[i]);
    coord.runEpoch();
    EXPECT_DOUBLE_EQ(nodes[0].controller()->params().interactionFactor,
                     3.0);
    EXPECT_DOUBLE_EQ(nodes[4].controller()->params().interactionFactor,
                     2.0);
    EXPECT_EQ(coord.clusterCount(), 2u);
    EXPECT_EQ(coord.memberCount(c0), 3u);
    EXPECT_EQ(coord.memberCount(c1), 2u);
}

} // namespace
} // namespace smartconf::fleet
