/**
 * @file
 * Fleet determinism across executor configurations: the results that
 * feed bench_fleet's JSON payload must be identical whether the epoch
 * bodies run inline, on the process-wide shard pool, or on a
 * dedicated work-stealing pool of any size.  This is the in-process
 * half of the `bench_fleet --json` byte-identity that CI checks via
 * the payload sha across the --jobs x --shard-workers matrix.
 */

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "fleet/fleet.h"
#include "sim/shard.h"

namespace smartconf::fleet {
namespace {

FleetParams
testFleet()
{
    FleetParams p;
    p.tenants = 512;
    p.ticks = 120;
    p.seed = 3;
    return p;
}

void
expectIdentical(const FleetResult &a, const FleetResult &b)
{
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_DOUBLE_EQ(a.violation_rate_mean, b.violation_rate_mean);
    EXPECT_DOUBLE_EQ(a.violation_rate_p99, b.violation_rate_p99);
    EXPECT_DOUBLE_EQ(a.tenants_violated_frac,
                     b.tenants_violated_frac);
    EXPECT_DOUBLE_EQ(a.convergence_p50_ticks,
                     b.convergence_p50_ticks);
    EXPECT_DOUBLE_EQ(a.convergence_p99_ticks,
                     b.convergence_p99_ticks);
    EXPECT_DOUBLE_EQ(a.mean_conf_rel, b.mean_conf_rel);
    EXPECT_EQ(a.clusters, b.clusters);
    EXPECT_DOUBLE_EQ(a.max_interaction, b.max_interaction);
    EXPECT_EQ(a.coord.attach_calls, b.coord.attach_calls);
    EXPECT_EQ(a.coord.aggregate_violations,
              b.coord.aggregate_violations);
    ASSERT_EQ(a.per_archetype.size(), b.per_archetype.size());
    for (std::size_t i = 0; i < a.per_archetype.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.per_archetype[i].violation_rate,
                         b.per_archetype[i].violation_rate);
        EXPECT_DOUBLE_EQ(a.per_archetype[i].mean_conf_rel,
                         b.per_archetype[i].mean_conf_rel);
    }
}

TEST(FleetDeterminism, PoolSizeDoesNotChangeResults)
{
    // Reference: fully inline (no pool, serial shard plane).
    const FleetResult serial = runFleet(testFleet());

    for (const std::size_t jobs : {2u, 8u}) {
        exec::ThreadPool pool(jobs);
        FleetParams p = testFleet();
        p.pool = &pool;
        const FleetResult parallel = runFleet(p);
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        expectIdentical(serial, parallel);
    }
}

TEST(FleetDeterminism, ShardWorkersDoNotChangeResults)
{
    const std::size_t before = sim::shardWorkers();
    sim::setShardWorkers(1);
    const FleetResult serial = runFleet(testFleet());
    sim::setShardWorkers(4);
    const FleetResult sharded = runFleet(testFleet());
    sim::setShardWorkers(before);
    expectIdentical(serial, sharded);
}

TEST(FleetDeterminism, RepeatRunsAreBitIdentical)
{
    const FleetResult a = runFleet(testFleet());
    const FleetResult b = runFleet(testFleet());
    expectIdentical(a, b);
    EXPECT_EQ(a.coord.fanouts, b.coord.fanouts);
    EXPECT_EQ(a.epochs, b.epochs);
}

} // namespace
} // namespace smartconf::fleet
