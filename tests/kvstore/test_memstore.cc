/** @file Unit tests for the HBase-style memstore (HB2149). */

#include <gtest/gtest.h>

#include "kvstore/memstore.h"

namespace smartconf::kvstore {
namespace {

MemstoreParams
params()
{
    MemstoreParams p;
    p.upper_limit_mb = 100.0;
    p.flush_rate_mb_per_tick = 1.0;
    p.flush_setup_ticks = 5.0;
    return p;
}

TEST(Memstore, BlocksAtUpperWatermark)
{
    Memstore m(20.0, params());
    sim::Tick t = 0;
    while (!m.blocked())
        m.write(10.0, t++);
    EXPECT_GE(m.occupancyMb(), 100.0);
    EXPECT_EQ(m.flushCount(), 1u);
    EXPECT_FALSE(m.write(1.0, t));
    EXPECT_EQ(m.blockedWrites(), 1u);
}

TEST(Memstore, BlockDurationMatchesFlushAmount)
{
    // block = setup + amount / rate = 5 + 20 = 25 ticks.
    Memstore m(20.0, params());
    sim::Tick t = 0;
    while (!m.blocked())
        m.write(10.0, t);
    while (m.blocked())
        m.step(++t);
    EXPECT_NEAR(m.lastBlockTicks(), 25.0, 2.0);
}

TEST(Memstore, LargerAmountBlocksLonger)
{
    auto block_for = [](double amount) {
        Memstore m(amount, params());
        sim::Tick t = 0;
        while (!m.blocked())
            m.write(10.0, t);
        while (m.blocked())
            m.step(++t);
        return m.lastBlockTicks();
    };
    EXPECT_GT(block_for(60.0), block_for(15.0) + 30.0);
}

TEST(Memstore, FlushStopsAtTarget)
{
    Memstore m(30.0, params());
    sim::Tick t = 0;
    while (!m.blocked())
        m.write(10.0, t);
    const double at_block = m.occupancyMb();
    while (m.blocked())
        m.step(++t);
    EXPECT_NEAR(m.occupancyMb(), at_block - 30.0, 1.0);
}

TEST(Memstore, FloatConfigAdjustable)
{
    Memstore m(20.0, params());
    m.setFlushAmountMb(33.5);
    EXPECT_DOUBLE_EQ(m.flushAmountMb(), 33.5);
    m.setFlushAmountMb(-5.0);
    EXPECT_DOUBLE_EQ(m.flushAmountMb(), 0.0) << "clamped at zero";
}

TEST(Memstore, WritesResumeAfterFlush)
{
    Memstore m(10.0, params());
    sim::Tick t = 0;
    while (!m.blocked())
        m.write(10.0, t);
    while (m.blocked())
        m.step(++t);
    EXPECT_TRUE(m.write(1.0, t));
}

} // namespace
} // namespace smartconf::kvstore
