/** @file Unit tests for the RPC region server. */

#include <gtest/gtest.h>

#include "kvstore/server.h"

namespace smartconf::kvstore {
namespace {

KvServerParams
params()
{
    KvServerParams p;
    p.heap_mb = 495.0;
    p.request_queue_items = 50;
    p.response_queue_mb = 100.0;
    p.service_ops_per_tick = 10.0;
    p.network_mb_per_tick = 10.0;
    p.other_base_mb = 100.0;
    p.other_walk_mb = 0.0; // deterministic for unit tests
    p.other_max_mb = 100.0;
    return p;
}

std::vector<workload::Op>
writes(int n, double mb)
{
    std::vector<workload::Op> ops(n);
    for (auto &op : ops) {
        op.type = workload::Op::Type::Write;
        op.size_mb = mb;
    }
    return ops;
}

std::vector<workload::Op>
reads(int n, double mb)
{
    std::vector<workload::Op> ops(n);
    for (auto &op : ops) {
        op.type = workload::Op::Type::Read;
        op.size_mb = mb;
    }
    return ops;
}

TEST(KvServer, AcceptsAndServes)
{
    KvServer s(params(), sim::Rng(1));
    s.accept(writes(5, 1.0), 0);
    EXPECT_EQ(s.requestQueue().size(), 5u);
    s.step(1);
    EXPECT_EQ(s.completedOps(), 5u);
    EXPECT_EQ(s.requestQueue().size(), 0u);
}

TEST(KvServer, QueuePayloadCountsAgainstHeap)
{
    KvServer s(params(), sim::Rng(2));
    s.accept(writes(20, 2.0), 0);
    EXPECT_NEAR(s.heap().component("request.queue"), 40.0, 1e-9);
    EXPECT_GE(s.heap().usedMb(), 140.0);
}

TEST(KvServer, OomCrashStopsService)
{
    KvServerParams p = params();
    p.request_queue_items = 1000;
    p.service_ops_per_tick = 0.0;
    KvServer s(p, sim::Rng(3));
    // 400 MB of queued writes + 100 MB floor > 495 MB heap.
    s.accept(writes(400, 1.0), 0);
    EXPECT_TRUE(s.crashed());
    const auto before = s.completedOps();
    s.accept(writes(10, 1.0), 1);
    s.step(1);
    EXPECT_EQ(s.completedOps(), before) << "dead server serves nothing";
}

TEST(KvServer, ReadsProduceResponses)
{
    KvServerParams p = params();
    p.network_mb_per_tick = 0.0; // keep responses buffered
    KvServer s(p, sim::Rng(4));
    s.accept(reads(4, 2.0), 0);
    s.step(1);
    EXPECT_NEAR(s.responseQueue().bytesMb(), 8.0, 1e-9);
    EXPECT_NEAR(s.heap().component("response.queue"), 8.0, 1e-9);
}

TEST(KvServer, ResponseOverflowDropsCall)
{
    KvServerParams p = params();
    p.response_queue_mb = 5.0;
    p.network_mb_per_tick = 0.0;
    KvServer s(p, sim::Rng(5));
    s.accept(reads(4, 2.0), 0);
    s.step(1);
    // 2 responses fit (4 MB); the rest are dropped (HBASE-6728).
    EXPECT_EQ(s.completedOps(), 2u);
    EXPECT_EQ(s.droppedResponses(), 2u);
}

TEST(KvServer, NetworkDrainsResponses)
{
    KvServer s(params(), sim::Rng(6));
    s.accept(reads(4, 2.0), 0);
    s.step(1); // 8 MB buffered, 10 MB drained within the same tick
    EXPECT_NEAR(s.responseQueue().bytesMb(), 0.0, 1e-9);
}

TEST(KvServer, RequestTimeoutExpiresStaleWork)
{
    KvServerParams p = params();
    p.request_timeout = 5;
    p.service_ops_per_tick = 0.0; // nothing gets served
    KvServer s(p, sim::Rng(7));
    s.accept(writes(3, 1.0), 0);
    s.step(4);
    EXPECT_EQ(s.timedOutOps(), 0u);
    s.step(6);
    EXPECT_EQ(s.timedOutOps(), 3u);
    EXPECT_EQ(s.requestQueue().size(), 0u);
}

TEST(KvServer, QueueDelaysRecorded)
{
    KvServer s(params(), sim::Rng(8));
    s.accept(writes(3, 1.0), 0);
    s.step(7);
    EXPECT_EQ(s.queueDelays().count(), 3u);
    EXPECT_NEAR(s.queueDelays().max(), 7.0, 1e-9);
}

TEST(KvServer, ShardIngestTalliesEveryOfferedOp)
{
    KvServer s(params(), sim::Rng(9));
    // A batch big enough to split into several blocks, attributed via
    // the same pure layout the sharded generators use.
    const auto batch = writes(200, 0.5);
    s.accept(batch, 0, /*shard_seq=*/3);
    std::uint64_t ops = 0;
    double mb = 0.0;
    std::size_t lanes_hit = 0;
    for (std::size_t l = 0; l < sim::kShards; ++l) {
        ops += s.shardIngest().ops[l];
        mb += s.shardIngest().mb[l];
        lanes_hit += s.shardIngest().ops[l] > 0 ? 1 : 0;
    }
    EXPECT_EQ(ops, 200u);
    EXPECT_NEAR(mb, 100.0, 1e-9);
    EXPECT_EQ(lanes_hit, sim::shardBlockCount(200));
}

TEST(KvServer, ShardIngestBehaviourMatchesPlainAccept)
{
    // The 3-arg accept is accounting only: queue, heap and service
    // behaviour stay identical to the 2-arg form.
    KvServer plain(params(), sim::Rng(10));
    KvServer sharded(params(), sim::Rng(10));
    for (sim::Tick t = 0; t < 20; ++t) {
        plain.accept(writes(40, 1.0), t);
        sharded.accept(writes(40, 1.0), t, static_cast<std::uint64_t>(t));
        plain.step(t);
        sharded.step(t);
        ASSERT_EQ(plain.requestQueue().size(),
                  sharded.requestQueue().size());
        ASSERT_EQ(plain.completedOps(), sharded.completedOps());
        ASSERT_EQ(plain.heap().usedMb(), sharded.heap().usedMb());
    }
    for (std::size_t l = 0; l < sim::kShards; ++l)
        EXPECT_EQ(plain.shardIngest().ops[l], 0u);
}

} // namespace
} // namespace smartconf::kvstore
