/** @file Unit tests for the Cassandra-style memtable (CA6059). */

#include <gtest/gtest.h>

#include "kvstore/memtable.h"

namespace smartconf::kvstore {
namespace {

MemtableParams
params()
{
    MemtableParams p;
    p.flush_rate_mb_per_tick = 25.0;
    p.flush_penalty = 4.0;
    p.base_write_latency = 1.0;
    p.emergency_headroom = 1.25;
    p.flush_stall_ticks = 2.0;
    return p;
}

TEST(Memtable, AcceptsWritesBelowCap)
{
    Memtable m(100.0, params());
    EXPECT_DOUBLE_EQ(m.write(10.0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.occupancyMb(), 10.0);
    EXPECT_FALSE(m.flushing());
}

TEST(Memtable, FlushTriggersAtCapWithSnapshotSwap)
{
    Memtable m(50.0, params());
    for (int i = 0; i < 5; ++i)
        m.write(10.0, 0);
    EXPECT_TRUE(m.flushing());
    EXPECT_EQ(m.flushCount(), 1u);
    // The snapshot holds the full 50 MB; the active buffer restarts.
    EXPECT_DOUBLE_EQ(m.flushingMb(), 50.0);
    EXPECT_DOUBLE_EQ(m.activeMb(), 0.0);
    EXPECT_DOUBLE_EQ(m.occupancyMb(), 50.0);
}

TEST(Memtable, FlushStallBlocksWrites)
{
    Memtable m(50.0, params());
    for (int i = 0; i < 5; ++i)
        m.write(10.0, 0);
    ASSERT_TRUE(m.flushing());
    EXPECT_LT(m.write(1.0, 0), 0.0) << "blocked during stall";
    EXPECT_EQ(m.blockedWrites(), 1u);
    m.step(1);
    m.step(2);
    EXPECT_GT(m.write(1.0, 3), 0.0) << "stall over, writes resume";
}

TEST(Memtable, WritesDuringFlushPayPenalty)
{
    MemtableParams p = params();
    p.flush_rate_mb_per_tick = 10.0; // flush outlives the stall
    Memtable m(50.0, p);
    for (int i = 0; i < 5; ++i)
        m.write(10.0, 0);
    m.step(1);
    m.step(2); // stall over, flush still draining (30 MB left)
    ASSERT_TRUE(m.flushing());
    EXPECT_DOUBLE_EQ(m.write(1.0, 3), 4.0);
}

TEST(Memtable, FlushDrainsAtRate)
{
    Memtable m(50.0, params());
    for (int i = 0; i < 5; ++i)
        m.write(10.0, 0);
    m.step(1);
    EXPECT_DOUBLE_EQ(m.flushingMb(), 25.0);
    m.step(2);
    EXPECT_DOUBLE_EQ(m.flushingMb(), 0.0);
    EXPECT_FALSE(m.flushing());
}

TEST(Memtable, EmergencyHeadroomBlocks)
{
    MemtableParams p = params();
    p.flush_stall_ticks = 0.0;
    p.flush_rate_mb_per_tick = 0.1; // nearly stuck flush
    Memtable m(40.0, p);
    // Fill to the cap (starts flush), then keep writing into the fresh
    // active buffer until total occupancy hits 1.25 * cap = 50.
    for (int i = 0; i < 4; ++i)
        m.write(10.0, 0);
    ASSERT_TRUE(m.flushing());
    EXPECT_GT(m.write(10.0, 1), 0.0); // occupancy 50 now
    EXPECT_LT(m.write(10.0, 1), 0.0) << "emergency: blocked";
}

TEST(Memtable, DynamicCapAdjustment)
{
    Memtable m(1000.0, params());
    m.write(100.0, 0);
    EXPECT_FALSE(m.flushing());
    m.setCapMb(80.0); // SmartConf shrinks the cap below occupancy
    m.write(1.0, 1);  // next use notices and starts a flush
    EXPECT_TRUE(m.flushing());
}

} // namespace
} // namespace smartconf::kvstore
