/** @file Unit tests for the JVM heap model. */

#include <gtest/gtest.h>

#include "kvstore/heap.h"

namespace smartconf::kvstore {
namespace {

TEST(Heap, ComponentAccounting)
{
    JvmHeap h(495.0);
    EXPECT_DOUBLE_EQ(h.usedMb(), 0.0);
    h.setComponent("queue", 100.0);
    h.setComponent("other", 200.0);
    EXPECT_DOUBLE_EQ(h.usedMb(), 300.0);
    EXPECT_DOUBLE_EQ(h.component("queue"), 100.0);
    EXPECT_DOUBLE_EQ(h.component("missing"), 0.0);
}

TEST(Heap, AddComponentAndFloor)
{
    JvmHeap h(100.0);
    h.addComponent("c", 30.0);
    h.addComponent("c", -50.0); // cannot go negative
    EXPECT_DOUBLE_EQ(h.component("c"), 0.0);
    h.setComponent("d", -5.0);
    EXPECT_DOUBLE_EQ(h.component("d"), 0.0);
}

TEST(Heap, OomLatchesAtFirstViolation)
{
    JvmHeap h(100.0);
    h.setComponent("a", 50.0);
    EXPECT_FALSE(h.checkOom(10));
    h.setComponent("a", 150.0);
    EXPECT_TRUE(h.checkOom(42));
    EXPECT_EQ(h.oomTick(), 42);
    // Dropping usage later does not clear the latch: the JVM died.
    h.setComponent("a", 1.0);
    EXPECT_TRUE(h.checkOom(100));
    EXPECT_EQ(h.oomTick(), 42);
}

TEST(Heap, ExactCapacityIsNotOom)
{
    JvmHeap h(100.0);
    h.setComponent("a", 100.0);
    EXPECT_FALSE(h.checkOom(1));
}

} // namespace
} // namespace smartconf::kvstore
