/** @file Unit tests for the JVM heap model. */

#include <gtest/gtest.h>

#include "kvstore/heap.h"

namespace smartconf::kvstore {
namespace {

TEST(Heap, ComponentAccounting)
{
    JvmHeap h(495.0);
    EXPECT_DOUBLE_EQ(h.usedMb(), 0.0);
    h.setComponent("queue", 100.0);
    h.setComponent("other", 200.0);
    EXPECT_DOUBLE_EQ(h.usedMb(), 300.0);
    EXPECT_DOUBLE_EQ(h.component("queue"), 100.0);
    EXPECT_DOUBLE_EQ(h.component("missing"), 0.0);
}

TEST(Heap, AddComponentAndFloor)
{
    JvmHeap h(100.0);
    h.addComponent("c", 30.0);
    h.addComponent("c", -50.0); // cannot go negative
    EXPECT_DOUBLE_EQ(h.component("c"), 0.0);
    h.setComponent("d", -5.0);
    EXPECT_DOUBLE_EQ(h.component("d"), 0.0);
}

TEST(Heap, OomLatchesAtFirstViolation)
{
    JvmHeap h(100.0);
    h.setComponent("a", 50.0);
    EXPECT_FALSE(h.checkOom(10));
    h.setComponent("a", 150.0);
    EXPECT_TRUE(h.checkOom(42));
    EXPECT_EQ(h.oomTick(), 42);
    // Dropping usage later does not clear the latch: the JVM died.
    h.setComponent("a", 1.0);
    EXPECT_TRUE(h.checkOom(100));
    EXPECT_EQ(h.oomTick(), 42);
}

TEST(Heap, ExactCapacityIsNotOom)
{
    JvmHeap h(100.0);
    h.setComponent("a", 100.0);
    EXPECT_FALSE(h.checkOom(1));
}

TEST(Heap, SlotApiMatchesStringApi)
{
    JvmHeap by_name(500.0);
    JvmHeap by_slot(500.0);

    const JvmHeap::Slot q = by_slot.slot("queue");
    const JvmHeap::Slot o = by_slot.slot("other");
    by_name.setComponent("queue", 100.0);
    by_name.setComponent("other", 200.0);
    by_slot.set(q, 100.0);
    by_slot.set(o, 200.0);
    EXPECT_EQ(by_name.usedMb(), by_slot.usedMb()); // bit-identical
    EXPECT_DOUBLE_EQ(by_slot.at(q), 100.0);
    EXPECT_DOUBLE_EQ(by_slot.component("queue"), 100.0);

    by_name.addComponent("queue", -150.0); // floors at zero
    by_slot.add(q, -150.0);
    EXPECT_EQ(by_name.usedMb(), by_slot.usedMb());
    EXPECT_DOUBLE_EQ(by_slot.at(q), 0.0);
}

TEST(Heap, SlotHandlesSurviveLaterInsertions)
{
    // Slots registered early must keep addressing their component
    // after the sorted name table shifts underneath them.
    JvmHeap h(500.0);
    const JvmHeap::Slot m = h.slot("memtable");
    h.set(m, 40.0);
    // Insert names on both sides of "memtable" in sort order.
    const JvmHeap::Slot a = h.slot("aaa");
    const JvmHeap::Slot z = h.slot("zzz");
    const JvmHeap::Slot c = h.slot("cache");
    h.set(a, 1.0);
    h.set(z, 2.0);
    h.set(c, 4.0);
    EXPECT_DOUBLE_EQ(h.at(m), 40.0);
    EXPECT_DOUBLE_EQ(h.component("memtable"), 40.0);
    EXPECT_DOUBLE_EQ(h.usedMb(), 47.0);
    h.set(m, 50.0);
    EXPECT_DOUBLE_EQ(h.component("memtable"), 50.0);
}

TEST(Heap, SlotIsFindOrInsert)
{
    JvmHeap h(100.0);
    h.setComponent("cache", 30.0);
    const JvmHeap::Slot c = h.slot("cache"); // existing component
    EXPECT_DOUBLE_EQ(h.at(c), 30.0);
    const JvmHeap::Slot c2 = h.slot("cache");
    EXPECT_EQ(c, c2); // stable handle, not a fresh registration
    // Registering a brand new name starts it at 0.0 — adding a zero
    // component must not disturb the running sum.
    const double before = h.usedMb();
    (void)h.slot("fresh");
    EXPECT_EQ(h.usedMb(), before);
}

} // namespace
} // namespace smartconf::kvstore
