/** @file Unit tests for the bounded RPC queues (HB3813 / HB6728). */

#include <gtest/gtest.h>

#include "kvstore/rpc_queue.h"

namespace smartconf::kvstore {
namespace {

RpcItem
item(double mb, bool is_write = true)
{
    RpcItem i;
    i.size_mb = mb;
    i.is_write = is_write;
    return i;
}

TEST(RequestQueue, BoundEnforced)
{
    RpcRequestQueue q(2);
    EXPECT_TRUE(q.offer(item(1.0), 0));
    EXPECT_TRUE(q.offer(item(1.0), 0));
    EXPECT_FALSE(q.offer(item(1.0), 0)) << "full queue rejects";
    EXPECT_EQ(q.accepted(), 2u);
    EXPECT_EQ(q.rejected(), 1u);
    EXPECT_DOUBLE_EQ(q.bytesMb(), 2.0);
}

TEST(RequestQueue, DrainAndPop)
{
    RpcRequestQueue q(10);
    for (int i = 0; i < 5; ++i)
        q.offer(item(2.0), i);
    EXPECT_EQ(q.drain(3), 3u);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_DOUBLE_EQ(q.bytesMb(), 4.0);
    const RpcItem front = q.pop();
    EXPECT_EQ(front.enqueued, 3);
    EXPECT_EQ(q.size(), 1u);
}

TEST(RequestQueue, DrainMoreThanAvailable)
{
    RpcRequestQueue q(10);
    q.offer(item(1.0), 0);
    EXPECT_EQ(q.drain(100), 1u);
    EXPECT_DOUBLE_EQ(q.bytesMb(), 0.0);
}

TEST(RequestQueue, ShrinkBelowOccupancyTolerated)
{
    // Paper Sec. 4.2: temporary inconsistency between C and deputy C'
    // must be tolerated — the queue refuses new work until it drains.
    RpcRequestQueue q(10);
    for (int i = 0; i < 8; ++i)
        q.offer(item(1.0), i);
    q.setMaxItems(3);
    EXPECT_EQ(q.size(), 8u) << "existing items are not evicted";
    EXPECT_FALSE(q.offer(item(1.0), 9));
    q.drain(6);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_TRUE(q.offer(item(1.0), 10));
}

TEST(RequestQueue, FrontIsNullWhenEmpty)
{
    RpcRequestQueue q(2);
    EXPECT_EQ(q.front(), nullptr);
}

TEST(ResponseQueue, ByteBoundEnforced)
{
    RpcResponseQueue q(10.0);
    EXPECT_TRUE(q.offer(6.0));
    EXPECT_FALSE(q.offer(6.0)) << "would exceed 10 MB";
    EXPECT_TRUE(q.offer(4.0));
    EXPECT_EQ(q.accepted(), 2u);
    EXPECT_EQ(q.stalled(), 1u);
    EXPECT_DOUBLE_EQ(q.bytesMb(), 10.0);
}

TEST(ResponseQueue, PartialDrain)
{
    RpcResponseQueue q(100.0);
    q.offer(8.0);
    q.offer(8.0);
    EXPECT_DOUBLE_EQ(q.drain(10.0), 10.0);
    EXPECT_DOUBLE_EQ(q.bytesMb(), 6.0);
    EXPECT_DOUBLE_EQ(q.drain(100.0), 6.0);
    EXPECT_DOUBLE_EQ(q.bytesMb(), 0.0);
}

TEST(ResponseQueue, ShrinkBelowOccupancyTolerated)
{
    RpcResponseQueue q(100.0);
    q.offer(60.0);
    q.setMaxMb(10.0);
    EXPECT_DOUBLE_EQ(q.bytesMb(), 60.0);
    EXPECT_FALSE(q.offer(1.0));
    q.drain(55.0);
    EXPECT_TRUE(q.offer(1.0));
}

} // namespace
} // namespace smartconf::kvstore
