/**
 * @file
 * Differential tests for the SIMD kernel layer (sim/kernels.h).
 *
 * The scalar backend is the canonical definition of every kernel's
 * output, so the core of this suite is one shape: compute a result at
 * each dispatch level the host supports and require it to be
 * *bit-identical* to the scalar reference — integer kernels because
 * they are pure integer math, floating-point reductions because all
 * backends implement the same pinned lane-then-combine order.
 *
 * Inputs deliberately include the awkward cases: n = 0 and 1, lengths
 * around every lane-count multiple, NaN/Inf payloads, heavy-tailed
 * alias tables, and raw words at the integer extremes.
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/alias_sampler.h"
#include "sim/kernels.h"
#include "sim/rng.h"
#include "sim/simd.h"

namespace kernels = smartconf::sim::kernels;
namespace simd = smartconf::sim::simd;
using smartconf::sim::AliasTable;
using smartconf::sim::Rng;
using smartconf::sim::ZipfianGenerator;

namespace {

constexpr simd::Isa kAllLevels[] = {simd::Isa::Scalar, simd::Isa::Sse2,
                                    simd::Isa::Avx2};

/**
 * Run @p fn once per ISA level this host can execute (requesting an
 * unsupported level clamps, which we detect and skip), restoring the
 * default dispatch level afterwards even on assertion failure.
 */
template <typename Fn>
void
forEachSupportedIsa(Fn &&fn)
{
    int levels_run = 0;
    for (simd::Isa isa : kAllLevels) {
        if (kernels::setIsa(isa) != isa)
            continue; // host or build can't execute this level
        SCOPED_TRACE(std::string("isa=") + simd::name(isa));
        fn(isa);
        ++levels_run;
    }
    kernels::setIsa(simd::detected());
    // The scalar reference always exists; running zero levels would
    // mean the whole suite silently tested nothing.
    ASSERT_GE(levels_run, 1);
}

/** Lengths that straddle every lane-multiple boundary up to 4 lanes. */
const std::size_t kAwkwardLengths[] = {0,  1,  2,  3,  4,  5,  7,  8,
                                       9,  12, 15, 16, 17, 31, 32, 33,
                                       63, 64, 100, 255, 1024, 1027};

std::vector<std::uint64_t>
randomWords(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> w(n);
    for (auto &x : w)
        x = rng.next();
    // Salt in the integer extremes so compares/rotates see them.
    if (n > 0)
        w[0] = 0;
    if (n > 1)
        w[1] = ~0ULL;
    if (n > 2)
        w[2] = 0x8000000000000000ULL;
    if (n > 3)
        w[3] = 0x00000000ffffffffULL;
    return w;
}

/** Bitwise equality for doubles (distinguishes NaN payloads, -0.0). */
bool
sameBits(double a, double b)
{
    std::uint64_t ua = 0, ub = 0;
    std::memcpy(&ua, &a, 8);
    std::memcpy(&ub, &b, 8);
    return ua == ub;
}

} // namespace

// ---------------------------------------------------------------------------
// Dispatch plumbing

TEST(Simd, ParseAcceptsExactlyTheLevelNames)
{
    simd::Isa isa = simd::Isa::Avx2;
    EXPECT_TRUE(simd::parse("scalar", isa));
    EXPECT_EQ(isa, simd::Isa::Scalar);
    EXPECT_TRUE(simd::parse("sse2", isa));
    EXPECT_EQ(isa, simd::Isa::Sse2);
    EXPECT_TRUE(simd::parse("avx2", isa));
    EXPECT_EQ(isa, simd::Isa::Avx2);

    isa = simd::Isa::Sse2;
    EXPECT_FALSE(simd::parse("", isa));
    EXPECT_FALSE(simd::parse("AVX2", isa)); // names are lower-case
    EXPECT_FALSE(simd::parse("avx512", isa));
    EXPECT_EQ(isa, simd::Isa::Sse2); // out untouched on failure
}

TEST(Simd, NamesRoundTripThroughParse)
{
    for (simd::Isa isa : kAllLevels) {
        simd::Isa back = simd::Isa::Scalar;
        ASSERT_TRUE(simd::parse(simd::name(isa), back));
        EXPECT_EQ(back, isa);
    }
}

TEST(Simd, DetectedIsSupportedAndScalarAlwaysIs)
{
    EXPECT_TRUE(simd::supported(simd::detected()));
    EXPECT_TRUE(simd::supported(simd::Isa::Scalar));
    if (!simd::compiledIn())
        EXPECT_EQ(simd::detected(), simd::Isa::Scalar);
}

TEST(Kernels, SetIsaClampsToDetectedAndReportsActive)
{
    const simd::Isa ceiling = simd::detected();
    for (simd::Isa isa : kAllLevels) {
        const simd::Isa got = kernels::setIsa(isa);
        EXPECT_LE(static_cast<int>(got), static_cast<int>(ceiling));
        if (simd::supported(isa))
            EXPECT_EQ(got, isa);
        EXPECT_EQ(kernels::activeIsa(), got);
    }
    kernels::setIsa(simd::detected());
}

// ---------------------------------------------------------------------------
// rngOutputMap / fillRaw

TEST(Kernels, RngOutputMapMatchesScalarAtEveryLevel)
{
    for (std::size_t n : kAwkwardLengths) {
        const auto input = randomWords(n, 0x1234 + n);
        auto reference = input;
        kernels::setIsa(simd::Isa::Scalar);
        kernels::rngOutputMap(reference.data(), reference.size());

        forEachSupportedIsa([&](simd::Isa) {
            auto words = input;
            kernels::rngOutputMap(words.data(), words.size());
            EXPECT_EQ(words, reference) << "n=" << n;
        });
    }
}

TEST(Kernels, FillRawReproducesTheSerialStreamWordForWord)
{
    forEachSupportedIsa([&](simd::Isa) {
        for (std::size_t n : kAwkwardLengths) {
            Rng serial(0xfeed + n);
            Rng batched(0xfeed + n);
            std::vector<std::uint64_t> expect(n), got(n);
            for (auto &w : expect)
                w = serial.next();
            batched.fillRaw(got.data(), n);
            EXPECT_EQ(got, expect) << "n=" << n;
            // The generators must also land in the same state.
            EXPECT_EQ(batched.next(), serial.next()) << "n=" << n;
        }
    });
}

// ---------------------------------------------------------------------------
// aliasResolve / sampleBatch

TEST(Kernels, AliasResolveMatchesScalarOnHeavyTailedTables)
{
    // Zipf(theta=0.99) concentrates ~10% of mass on rank 0: slots are
    // wildly unequal, so accept/alias both fire constantly.
    const std::uint64_t kPopulations[] = {1, 2, 3, 100, 4096, 100000};
    for (std::uint64_t pop : kPopulations) {
        const auto table = AliasTable::zipfian(pop, 0.99);
        for (std::size_t n : kAwkwardLengths) {
            const auto input = randomWords(n, pop * 31 + n);
            auto reference = input;
            kernels::setIsa(simd::Isa::Scalar);
            Rng ref_rng(pop + n);
            table->sampleBatch(ref_rng, reference.data(), n);

            forEachSupportedIsa([&](simd::Isa) {
                auto out = input;
                Rng rng(pop + n);
                table->sampleBatch(rng, out.data(), n);
                EXPECT_EQ(out, reference)
                    << "pop=" << pop << " n=" << n;
            });
        }
    }
}

TEST(Kernels, SampleBatchEqualsSerialSampleCalls)
{
    const auto table = AliasTable::zipfian(100000, 0.99);
    forEachSupportedIsa([&](simd::Isa) {
        Rng serial(42), batched(42);
        std::vector<std::uint64_t> got(257);
        table->sampleBatch(batched, got.data(), got.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], table->sample(serial)) << "i=" << i;
        EXPECT_EQ(batched.next(), serial.next());
    });
}

TEST(Kernels, ZipfianGeneratorBatchMatchesSerialAcrossLevels)
{
    ZipfianGenerator zipf(5000, 0.8);
    forEachSupportedIsa([&](simd::Isa) {
        Rng serial(7), batched(7);
        std::uint64_t got[97];
        zipf.sampleBatch(batched, got, 97);
        for (std::size_t i = 0; i < 97; ++i)
            EXPECT_EQ(got[i], zipf.sample(serial)) << "i=" << i;
    });
}

// ---------------------------------------------------------------------------
// reduceSum / reduceMinMax

namespace {

std::vector<double>
randomDoubles(std::size_t n, std::uint64_t seed, bool adversarial)
{
    Rng rng(seed);
    std::vector<double> x(n);
    for (auto &v : x)
        v = rng.uniform(-1e6, 1e6);
    if (adversarial && n > 0) {
        // NaN / ±Inf / ±0 / denormal sprinkled at fixed positions.
        x[0] = std::numeric_limits<double>::quiet_NaN();
        if (n > 1)
            x[1] = std::numeric_limits<double>::infinity();
        if (n > 2)
            x[2] = -std::numeric_limits<double>::infinity();
        if (n > 3)
            x[3] = -0.0;
        if (n > 4)
            x[4] = std::numeric_limits<double>::denorm_min();
        if (n > 7)
            x[7] = std::numeric_limits<double>::quiet_NaN();
    }
    return x;
}

} // namespace

TEST(Kernels, ReduceSumBitIdenticalAcrossLevels)
{
    for (bool adversarial : {false, true}) {
        for (std::size_t n : kAwkwardLengths) {
            const auto x = randomDoubles(n, 0xabc + n, adversarial);
            kernels::setIsa(simd::Isa::Scalar);
            const double reference = kernels::reduceSum(x.data(), n);

            forEachSupportedIsa([&](simd::Isa) {
                const double got = kernels::reduceSum(x.data(), n);
                EXPECT_TRUE(sameBits(got, reference))
                    << "n=" << n << " adversarial=" << adversarial
                    << " got=" << got << " want=" << reference;
            });
        }
    }
}

TEST(Kernels, ReduceSumEmptyIsZeroAndSingleIsIdentity)
{
    forEachSupportedIsa([&](simd::Isa) {
        EXPECT_EQ(kernels::reduceSum(nullptr, 0), 0.0);
        const double v = 3.25;
        EXPECT_EQ(kernels::reduceSum(&v, 1), 3.25);
    });
}

TEST(Kernels, ReduceMinMaxBitIdenticalAcrossLevels)
{
    for (bool adversarial : {false, true}) {
        for (std::size_t n : kAwkwardLengths) {
            const auto x = randomDoubles(n, 0xdef + n, adversarial);
            kernels::setIsa(simd::Isa::Scalar);
            const kernels::MinMax reference =
                kernels::reduceMinMax(x.data(), n);

            forEachSupportedIsa([&](simd::Isa) {
                const kernels::MinMax got =
                    kernels::reduceMinMax(x.data(), n);
                EXPECT_TRUE(sameBits(got.min, reference.min))
                    << "n=" << n << " adversarial=" << adversarial;
                EXPECT_TRUE(sameBits(got.max, reference.max))
                    << "n=" << n << " adversarial=" << adversarial;
            });
        }
    }
}

TEST(Kernels, ReduceMinMaxIdentitiesAndNanRule)
{
    forEachSupportedIsa([&](simd::Isa) {
        const kernels::MinMax empty = kernels::reduceMinMax(nullptr, 0);
        EXPECT_EQ(empty.min, std::numeric_limits<double>::infinity());
        EXPECT_EQ(empty.max, -std::numeric_limits<double>::infinity());

        // minpd/maxpd semantics: a NaN *observation* keeps the
        // accumulator, so an all-NaN input returns the identities...
        std::vector<double> nans(13,
            std::numeric_limits<double>::quiet_NaN());
        const kernels::MinMax all_nan =
            kernels::reduceMinMax(nans.data(), nans.size());
        EXPECT_EQ(all_nan.min, std::numeric_limits<double>::infinity());
        EXPECT_EQ(all_nan.max,
                  -std::numeric_limits<double>::infinity());

        // ...and NaNs mixed into real data are transparent.
        std::vector<double> mixed = {std::nan(""), 2.0, std::nan(""),
                                     -5.0, std::nan(""), 9.0,
                                     std::nan("")};
        const kernels::MinMax m =
            kernels::reduceMinMax(mixed.data(), mixed.size());
        EXPECT_EQ(m.min, -5.0);
        EXPECT_EQ(m.max, 9.0);
    });
}

TEST(Kernels, ReduceSumUsesThePinnedLaneOrder)
{
    // Pin the documented order itself, not just cross-backend
    // agreement: lanes accumulate x[i] into lane i%4, combined as
    // (L0 + L2) + (L1 + L3), tail folded serially after the combine.
    const std::vector<double> x = {0.1, 1e16, -1e16, 0.25,
                                   0.5, 3.0,  7.0,   11.0,
                                   13.0}; // 9 = 2 blocks + 1 tail
    double lane[4] = {0, 0, 0, 0};
    for (std::size_t i = 0; i + 4 <= x.size(); i += 4)
        for (std::size_t j = 0; j < 4; ++j)
            lane[j] += x[i + j];
    double expect = (lane[0] + lane[2]) + (lane[1] + lane[3]);
    for (std::size_t i = (x.size() / 4) * 4; i < x.size(); ++i)
        expect += x[i];

    forEachSupportedIsa([&](simd::Isa) {
        EXPECT_TRUE(sameBits(kernels::reduceSum(x.data(), x.size()),
                             expect));
    });
}

// ---------------------------------------------------------------------------
// checksum / copyBytes

TEST(Kernels, ChecksumBitIdenticalAcrossLevels)
{
    for (std::size_t n : kAwkwardLengths) {
        std::vector<unsigned char> data(n);
        Rng rng(0x5eed + n);
        for (auto &b : data)
            b = static_cast<unsigned char>(rng.next());

        kernels::setIsa(simd::Isa::Scalar);
        const std::uint64_t reference =
            kernels::checksum(data.data(), n);

        forEachSupportedIsa([&](simd::Isa) {
            EXPECT_EQ(kernels::checksum(data.data(), n), reference)
                << "n=" << n;
        });
    }
}

TEST(Kernels, ChecksumMatchesTheDocumentedDefinition)
{
    // Independent re-derivation of the spec in kernels.h, so the
    // on-disk format can't silently drift with the implementation.
    const auto spec = [](const unsigned char *p, std::size_t len) {
        constexpr std::uint64_t P = 0x100000001b3ULL;
        constexpr std::uint64_t B = 0xcbf29ce484222325ULL;
        std::uint64_t lane[4];
        for (std::uint64_t j = 0; j < 4; ++j)
            lane[j] = B ^ (j * 0x9e3779b97f4a7c15ULL);
        std::size_t i = 0;
        for (; i + 32 <= len; i += 32)
            for (std::size_t j = 0; j < 4; ++j) {
                std::uint64_t w = 0;
                std::memcpy(&w, p + i + 8 * j, 8);
                lane[j] = (lane[j] ^ w) * P;
            }
        std::uint64_t h = B;
        for (std::size_t j = 0; j < 4; ++j)
            h = (h ^ lane[j]) * P;
        for (; i + 8 <= len; i += 8) {
            std::uint64_t w = 0;
            std::memcpy(&w, p + i, 8);
            h = (h ^ w) * P;
        }
        for (; i < len; ++i)
            h = (h ^ p[i]) * P;
        return h;
    };

    for (std::size_t n : kAwkwardLengths) {
        std::vector<unsigned char> data(n);
        Rng rng(0xc0de + n);
        for (auto &b : data)
            b = static_cast<unsigned char>(rng.next());
        forEachSupportedIsa([&](simd::Isa) {
            EXPECT_EQ(kernels::checksum(data.data(), n),
                      spec(data.data(), n))
                << "n=" << n;
        });
    }
}

TEST(Kernels, ChecksumDetectsSingleBitFlips)
{
    std::vector<unsigned char> data(257);
    Rng rng(99);
    for (auto &b : data)
        b = static_cast<unsigned char>(rng.next());
    const std::uint64_t clean =
        kernels::checksum(data.data(), data.size());
    for (std::size_t pos : {std::size_t{0}, std::size_t{31},
                            std::size_t{32}, std::size_t{255},
                            std::size_t{256}}) {
        data[pos] ^= 0x10;
        EXPECT_NE(kernels::checksum(data.data(), data.size()), clean)
            << "flip at " << pos;
        data[pos] ^= 0x10;
    }
}

TEST(Kernels, CopyBytesCopiesExactlyAtEveryLevel)
{
    for (std::size_t n : kAwkwardLengths) {
        std::vector<unsigned char> src(n);
        Rng rng(0xcafe + n);
        for (auto &b : src)
            b = static_cast<unsigned char>(rng.next());

        forEachSupportedIsa([&](simd::Isa) {
            // Guard bytes on both sides catch overwrites.
            std::vector<unsigned char> dst(n + 64, 0xAA);
            kernels::copyBytes(dst.data() + 32, src.data(), n);
            EXPECT_EQ(std::memcmp(dst.data() + 32, src.data(), n), 0)
                << "n=" << n;
            for (std::size_t i = 0; i < 32; ++i) {
                ASSERT_EQ(dst[i], 0xAA) << "front guard, n=" << n;
                ASSERT_EQ(dst[n + 32 + i], 0xAA)
                    << "back guard, n=" << n;
            }
        });
    }
}

// ---------------------------------------------------------------------------
// coinThreshold (the batch coin-flip contract)

TEST(Kernels, CoinThresholdMatchesUniformCompareExactly)
{
    // chance(p) must equal (word >> 11) < coinThreshold(p) for the
    // same word, for any p — including p exactly representable at the
    // 2^-53 grid (where ceil() ties matter) and the clamped edges.
    Rng prng(0xb0b);
    std::vector<double> ps = {0.0,   1.0,  0.5,    0.25, 1e-17,
                              1.0 - 1e-16, 0.1,    0.99, 0x1.0p-53,
                              3 * 0x1.0p-53, 0.7 - 0x1.0p-54};
    for (int i = 0; i < 100; ++i)
        ps.push_back(prng.uniform());

    Rng words(0x3333);
    for (double p : ps) {
        const std::uint64_t bound = Rng::coinThreshold(p);
        for (int i = 0; i < 64; ++i) {
            const std::uint64_t w = words.next();
            const bool via_double =
                static_cast<double>(w >> 11) * 0x1.0p-53 < p;
            EXPECT_EQ((w >> 11) < bound, via_double)
                << "p=" << p << " w=" << w;
        }
        // Boundary words: exactly at and adjacent to the threshold.
        if (bound > 0 && bound < (1ULL << 53)) {
            for (std::uint64_t hi : {bound - 1, bound, bound + 1}) {
                const std::uint64_t w = hi << 11;
                const bool via_double =
                    static_cast<double>(w >> 11) * 0x1.0p-53 < p;
                EXPECT_EQ((w >> 11) < bound, via_double)
                    << "p=" << p << " hi=" << hi;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// gaussianPairs (the polynomial Box-Muller kernel)

TEST(Kernels, GaussianPairsBitIdenticalAcrossLevels)
{
    // FP polynomial kernel: identity across backends is the entire
    // design contract (-ffp-contract=off + one shared op sequence).
    for (std::size_t pairs : kAwkwardLengths) {
        const auto words = randomWords(2 * pairs, 0x6a0 + pairs);
        std::vector<double> ref(2 * pairs, 0.0);
        kernels::setIsa(simd::Isa::Scalar);
        kernels::gaussianPairs(words.data(), ref.data(), pairs);
        kernels::setIsa(simd::detected());

        forEachSupportedIsa([&](simd::Isa) {
            std::vector<double> z(2 * pairs, -1.0);
            kernels::gaussianPairs(words.data(), z.data(), pairs);
            for (std::size_t i = 0; i < 2 * pairs; ++i)
                ASSERT_TRUE(sameBits(z[i], ref[i]))
                    << "pairs=" << pairs << " i=" << i << " got "
                    << z[i] << " want " << ref[i];
        });
    }
}

TEST(Kernels, GaussianPairsTracksTheLibmReference)
{
    // The kernel's polynomials replace libm, so it can't be *equal* to
    // std::log/sin/cos — but it must sit within ~1e-12 of the same
    // Box-Muller math evaluated through them, across random words and
    // the salted extremes (w0=0 drives u1 to its floor, mag to its
    // ceiling ~8.5; w0=~0 drives mag toward 0; w1 extremes push the
    // angle reduction through every quadrant boundary).
    const auto words = randomWords(2 * 4096, 0x11b3);
    std::vector<double> z(words.size());
    kernels::gaussianPairs(words.data(), z.data(), words.size() / 2);
    for (std::size_t i = 0; i + 2 <= words.size(); i += 2) {
        const double u1 =
            (static_cast<double>(words[i] >> 12) + 0.5) * 0x1.0p-52;
        const double u2 =
            static_cast<double>(words[i + 1] >> 12) * 0x1.0p-52;
        const double mag = std::sqrt(-2.0 * std::log(u1));
        const double ang = 2.0 * 3.14159265358979323846 * u2;
        EXPECT_NEAR(z[i], mag * std::cos(ang), 1e-12) << "i=" << i;
        EXPECT_NEAR(z[i + 1], mag * std::sin(ang), 1e-12) << "i=" << i;
    }
}

TEST(Kernels, GaussianBatchEqualsSerialGaussianCalls)
{
    // gaussianBatch must be stream- and value-identical to n serial
    // gaussian() calls, including the spare normal carried across the
    // batch boundary (odd n leaves one cached).
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                          std::size_t{3}, std::size_t{17},
                          std::size_t{256}, std::size_t{257},
                          std::size_t{300}}) {
        Rng serial(0xabba), batch(0xabba);
        // Desynchronize the spare state deliberately: an initial odd
        // draw leaves both generators holding a cached normal.
        ASSERT_TRUE(sameBits(serial.gaussian(), batch.gaussian()));

        std::vector<double> got(n, -1.0);
        batch.gaussianBatch(2.0, 3.0, got.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_TRUE(sameBits(got[i], serial.gaussian(2.0, 3.0)))
                << "n=" << n << " i=" << i;
        // Generators must land in the same state (words and spare).
        EXPECT_EQ(serial.next(), batch.next()) << "n=" << n;
        EXPECT_TRUE(sameBits(serial.gaussian(), batch.gaussian()))
            << "n=" << n;
    }
}
