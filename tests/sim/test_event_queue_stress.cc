/** @file Randomized stress test for the discrete-event engine. */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace smartconf::sim {
namespace {

TEST(EventQueueStress, ThousandsOfRandomEventsFireInOrder)
{
    Clock clock;
    EventQueue q(clock);
    sim::Rng rng(2024);

    std::vector<Tick> fired;
    std::vector<EventId> cancellable;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const Tick when = static_cast<Tick>(rng.below(100000));
        const EventId id =
            q.scheduleAt(when, [&fired, &clock] {
                fired.push_back(clock.now());
            });
        if (rng.chance(0.2))
            cancellable.push_back(id);
    }
    for (const EventId id : cancellable)
        q.cancel(id);

    q.runUntil(std::numeric_limits<Tick>::max());
    EXPECT_EQ(fired.size(), n - cancellable.size());
    for (std::size_t i = 1; i < fired.size(); ++i)
        ASSERT_LE(fired[i - 1], fired[i]) << "out of order at " << i;
}

TEST(EventQueueStress, CascadingReschedulesTerminate)
{
    Clock clock;
    EventQueue q(clock);
    sim::Rng rng(7);
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 2000 && rng.chance(0.9))
            q.scheduleAfter(static_cast<Tick>(rng.below(10)) + 1, chain);
    };
    for (int i = 0; i < 50; ++i)
        q.scheduleAt(static_cast<Tick>(i), chain);
    const std::size_t total = q.runUntil(1000000);
    EXPECT_EQ(total, static_cast<std::size_t>(fired));
    EXPECT_TRUE(q.empty());
}

} // namespace
} // namespace smartconf::sim
