/** @file Unit tests for the deterministic RNG and Zipfian sampler. */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/rng.h"

namespace smartconf::sim {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-5.0, 5.0);
        EXPECT_GE(u, -5.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng r(9);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += r.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, BelowAndBetween)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(10), 10u);
        const auto v = r.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng r(19);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += r.exponential(4.0);
    EXPECT_NEAR(acc / n, 4.0, 0.1);
}

TEST(Rng, GaussianMoments)
{
    Rng r(23);
    double acc = 0.0, acc2 = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = r.gaussian(10.0, 2.0);
        acc += x;
        acc2 += x * x;
    }
    const double mean = acc / n;
    const double var = acc2 / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable)
{
    Rng base(101);
    Rng f1 = base.fork(1);
    Rng f2 = base.fork(2);
    Rng f1again = base.fork(1);
    EXPECT_EQ(f1.next(), f1again.next());
    EXPECT_NE(f1.next(), f2.next());
}

TEST(Zipfian, InRangeAndSkewed)
{
    Rng r(31);
    ZipfianGenerator z(1000, 0.99);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i) {
        const auto k = z.sample(r);
        ASSERT_LT(k, 1000u);
        ++counts[k];
    }
    // Head items dominate the tail under Zipfian skew.
    EXPECT_GT(counts[0], counts[500] * 5);
    EXPECT_GT(counts[0], 50000 / 100);
}

TEST(Zipfian, UniformWhenThetaZero)
{
    Rng r(37);
    ZipfianGenerator z(10, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[z.sample(r)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c), 10000.0, 600.0);
}

} // namespace
} // namespace smartconf::sim
