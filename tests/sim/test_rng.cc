/** @file Unit tests for the deterministic RNG and Zipfian sampler. */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "sim/rng.h"

namespace smartconf::sim {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-5.0, 5.0);
        EXPECT_GE(u, -5.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng r(9);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += r.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, BelowAndBetween)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(10), 10u);
        const auto v = r.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng r(19);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += r.exponential(4.0);
    EXPECT_NEAR(acc / n, 4.0, 0.1);
}

TEST(Rng, GaussianMoments)
{
    Rng r(23);
    double acc = 0.0, acc2 = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = r.gaussian(10.0, 2.0);
        acc += x;
        acc2 += x * x;
    }
    const double mean = acc / n;
    const double var = acc2 / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable)
{
    Rng base(101);
    Rng f1 = base.fork(1);
    Rng f2 = base.fork(2);
    Rng f1again = base.fork(1);
    EXPECT_EQ(f1.next(), f1again.next());
    EXPECT_NE(f1.next(), f2.next());
}

TEST(Rng, JumpIsDeterministicAndDiverges)
{
    Rng a(202), b(202);
    a.jump();
    b.jump();
    EXPECT_EQ(a.next(), b.next()); // jump is a pure state transform

    Rng unjumped(202);
    Rng jumped(202);
    jumped.jump();
    EXPECT_NE(unjumped.next(), jumped.next());
}

TEST(Rng, RepeatedJumpsCarveDistinctStreams)
{
    // The ShardPlane derivation: walk one base stream with jump() and
    // collect a prefix of each substream; no two substreams (nor the
    // base) may collide on their first words.
    Rng walker(303);
    std::set<std::uint64_t> firsts;
    firsts.insert(Rng(303).next());
    for (int s = 0; s < 32; ++s) {
        walker.jump();
        Rng lane = walker;
        firsts.insert(lane.next());
    }
    EXPECT_EQ(firsts.size(), 33u);
}

TEST(Rng, ForkAfterJumpDiffersFromForkBeforeJump)
{
    // jump() remixes the fork seed alongside the state, so forks of a
    // jumped stream don't collide with forks of the original.
    Rng base(404);
    Rng jumped(404);
    jumped.jump();
    EXPECT_NE(base.fork(1).next(), jumped.fork(1).next());
}

TEST(Rng, JumpedStreamMatchesLongAdvance)
{
    // Sanity on the jump polynomial: the jumped stream must still be a
    // valid xoshiro stream (not a fixed point / zero state).  Drawing
    // a few million words from it must not revisit the pre-jump words
    // in lockstep.
    Rng jumped(505);
    jumped.jump();
    Rng plain(505);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (jumped.next() == plain.next())
            ++equal;
    EXPECT_EQ(equal, 0);
}

TEST(Zipfian, InRangeAndSkewed)
{
    Rng r(31);
    ZipfianGenerator z(1000, 0.99);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i) {
        const auto k = z.sample(r);
        ASSERT_LT(k, 1000u);
        ++counts[k];
    }
    // Head items dominate the tail under Zipfian skew.
    EXPECT_GT(counts[0], counts[500] * 5);
    EXPECT_GT(counts[0], 50000 / 100);
}

TEST(Zipfian, UniformWhenThetaZero)
{
    Rng r(37);
    ZipfianGenerator z(10, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[z.sample(r)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c), 10000.0, 600.0);
}

} // namespace
} // namespace smartconf::sim
