/** @file Unit tests for the discrete-event engine. */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "sim/event_queue.h"

namespace smartconf::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    Clock clock;
    EventQueue q(clock);
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.runUntil(std::numeric_limits<Tick>::max());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(clock.now(), 30);
}

TEST(EventQueue, FifoWithinTick)
{
    Clock clock;
    EventQueue q(clock);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.scheduleAt(7, [&order, i] { order.push_back(i); });
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HorizonStopsExecution)
{
    Clock clock;
    EventQueue q(clock);
    int fired = 0;
    q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(200, [&] { ++fired; });
    const auto n = q.runUntil(100);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(clock.now(), 100) << "clock advances to the horizon";
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    Clock clock;
    EventQueue q(clock);
    clock.advanceTo(50);
    Tick fired_at = -1;
    q.scheduleAfter(10, [&] { fired_at = clock.now(); });
    q.runUntil(1000);
    EXPECT_EQ(fired_at, 60);
}

TEST(EventQueue, PastSchedulingClampsToNow)
{
    Clock clock;
    EventQueue q(clock);
    clock.advanceTo(100);
    Tick fired_at = -1;
    q.scheduleAt(10, [&] { fired_at = clock.now(); });
    q.runUntil(1000);
    EXPECT_EQ(fired_at, 100);
}

TEST(EventQueue, CancelPreventsExecution)
{
    Clock clock;
    EventQueue q(clock);
    int fired = 0;
    const EventId id = q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(20, [&] { ++fired; });
    q.cancel(id);
    q.runUntil(1000);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    Clock clock;
    EventQueue q(clock);
    std::vector<Tick> fired;
    std::function<void()> recurring = [&] {
        fired.push_back(clock.now());
        if (fired.size() < 5)
            q.scheduleAfter(10, recurring);
    };
    q.scheduleAt(0, recurring);
    q.runUntil(1000);
    EXPECT_EQ(fired, (std::vector<Tick>{0, 10, 20, 30, 40}));
}

TEST(EventQueue, StepRunsExactlyOne)
{
    Clock clock;
    EventQueue q(clock);
    int fired = 0;
    q.scheduleAt(1, [&] { ++fired; });
    q.scheduleAt(2, [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EmptyAndPending)
{
    Clock clock;
    EventQueue q(clock);
    EXPECT_TRUE(q.empty());
    q.scheduleAt(5, [] {});
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.pending(), 1u);
    q.runUntil(10);
    EXPECT_TRUE(q.empty());
}

} // namespace
} // namespace smartconf::sim
