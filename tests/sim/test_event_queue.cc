/** @file Unit tests for the discrete-event engine. */

#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace smartconf::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    Clock clock;
    EventQueue q(clock);
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.runUntil(std::numeric_limits<Tick>::max());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(clock.now(), 30);
}

TEST(EventQueue, FifoWithinTick)
{
    Clock clock;
    EventQueue q(clock);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.scheduleAt(7, [&order, i] { order.push_back(i); });
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HorizonStopsExecution)
{
    Clock clock;
    EventQueue q(clock);
    int fired = 0;
    q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(200, [&] { ++fired; });
    const auto n = q.runUntil(100);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(clock.now(), 100) << "clock advances to the horizon";
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    Clock clock;
    EventQueue q(clock);
    clock.advanceTo(50);
    Tick fired_at = -1;
    q.scheduleAfter(10, [&] { fired_at = clock.now(); });
    q.runUntil(1000);
    EXPECT_EQ(fired_at, 60);
}

TEST(EventQueue, PastSchedulingClampsToNow)
{
    Clock clock;
    EventQueue q(clock);
    clock.advanceTo(100);
    Tick fired_at = -1;
    q.scheduleAt(10, [&] { fired_at = clock.now(); });
    q.runUntil(1000);
    EXPECT_EQ(fired_at, 100);
}

TEST(EventQueue, CancelPreventsExecution)
{
    Clock clock;
    EventQueue q(clock);
    int fired = 0;
    const EventId id = q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(20, [&] { ++fired; });
    q.cancel(id);
    q.runUntil(1000);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    Clock clock;
    EventQueue q(clock);
    std::vector<Tick> fired;
    std::function<void()> recurring = [&] {
        fired.push_back(clock.now());
        if (fired.size() < 5)
            q.scheduleAfter(10, recurring);
    };
    q.scheduleAt(0, recurring);
    q.runUntil(1000);
    EXPECT_EQ(fired, (std::vector<Tick>{0, 10, 20, 30, 40}));
}

TEST(EventQueue, StepRunsExactlyOne)
{
    Clock clock;
    EventQueue q(clock);
    int fired = 0;
    q.scheduleAt(1, [&] { ++fired; });
    q.scheduleAt(2, [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EmptyAndPending)
{
    Clock clock;
    EventQueue q(clock);
    EXPECT_TRUE(q.empty());
    q.scheduleAt(5, [] {});
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.pending(), 1u);
    q.runUntil(10);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeriodicFiresAtInterval)
{
    Clock clock;
    EventQueue q(clock);
    std::vector<Tick> fired;
    q.schedulePeriodic(10, [&] { fired.push_back(clock.now()); });
    q.runUntil(45);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30, 40}));
}

TEST(EventQueue, PeriodicAtStartsAtFirstTick)
{
    Clock clock;
    EventQueue q(clock);
    std::vector<Tick> fired;
    q.schedulePeriodicAt(0, 3, [&] { fired.push_back(clock.now()); });
    q.runUntil(10);
    EXPECT_EQ(fired, (std::vector<Tick>{0, 3, 6, 9}));
}

TEST(EventQueue, PeriodicKeepsRegistrationOrderAcrossIntervals)
{
    // A periodic keeps its registration-time position within every
    // tick it shares with other events, even after many rearms and
    // even against periodics at other intervals.  This is what lets
    // scenario drivers register step / control / metrics handlers in
    // dependency order once and rely on that order for the whole run.
    Clock clock;
    EventQueue q(clock);
    std::vector<std::pair<char, Tick>> order;
    q.schedulePeriodicAt(0, 1, [&] { order.push_back({'a', clock.now()}); });
    q.schedulePeriodicAt(0, 3, [&] { order.push_back({'b', clock.now()}); });
    q.schedulePeriodicAt(0, 1, [&] { order.push_back({'c', clock.now()}); });
    q.runUntil(3);
    const std::vector<std::pair<char, Tick>> want{
        {'a', 0}, {'b', 0}, {'c', 0}, {'a', 1}, {'c', 1},
        {'a', 2}, {'c', 2}, {'a', 3}, {'b', 3}, {'c', 3}};
    EXPECT_EQ(order, want);
}

TEST(EventQueue, CancelStopsPeriodic)
{
    Clock clock;
    EventQueue q(clock);
    int fired = 0;
    const EventId id = q.schedulePeriodic(5, [&] { ++fired; });
    q.runUntil(20);
    EXPECT_EQ(fired, 4);
    q.cancel(id);
    q.runUntil(100);
    EXPECT_EQ(fired, 4);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeriodicCanCancelItself)
{
    Clock clock;
    EventQueue q(clock);
    int fired = 0;
    EventId id = 0;
    id = q.schedulePeriodic(1, [&] {
        if (++fired == 3)
            q.cancel(id);
    });
    q.runUntil(100);
    EXPECT_EQ(fired, 3);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleIdCannotCancelReusedSlot)
{
    // Pool reuse must not change EventId semantics: after an entry
    // fires and its slot is recycled, the old id is dead — cancelling
    // it must not touch the slot's next occupant.
    Clock clock;
    EventQueue q(clock);
    int first = 0, second = 0;
    const EventId a = q.scheduleAt(1, [&] { ++first; });
    q.runUntil(1);
    EXPECT_EQ(first, 1);
    const EventId b = q.scheduleAt(2, [&] { ++second; });
    EXPECT_EQ(q.poolSize(), 1u) << "slot must be recycled";
    EXPECT_NE(a, b) << "recycled slot must yield a fresh id";
    q.cancel(a); // stale: must be a no-op
    q.runUntil(2);
    EXPECT_EQ(second, 1);
}

TEST(EventQueue, SteadyStatePoolStaysAtHighWaterMark)
{
    Clock clock;
    EventQueue q(clock);
    q.schedulePeriodic(1, [] {});
    for (int i = 0; i < 100; ++i) {
        q.scheduleAfter(1, [] {});
        q.runUntil(clock.now() + 1);
    }
    // One periodic + at most one one-shot alive at a time: the pool
    // never needs more than two slots no matter how long this runs.
    EXPECT_LE(q.poolSize(), 2u);
}

TEST(EventQueue, CancelledFrontDoesNotOvershootHorizon)
{
    Clock clock;
    EventQueue q(clock);
    int fired = 0;
    const EventId id = q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(200, [&] { ++fired; });
    q.cancel(id);
    const auto n = q.runUntil(100);
    EXPECT_EQ(n, 0u);
    EXPECT_EQ(fired, 0) << "the live event lies beyond the horizon";
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(clock.now(), 100);
}

TEST(EventQueue, LargeCaptureCallbackRuns)
{
    // Captures beyond the inline buffer take InlineCallback's heap
    // path; behaviour must be identical.
    Clock clock;
    EventQueue q(clock);
    std::array<double, 32> payload{};
    payload.fill(1.5);
    double sum = 0.0;
    q.scheduleAt(1, [payload, &sum] {
        for (const double v : payload)
            sum += v;
    });
    q.runUntil(1);
    EXPECT_DOUBLE_EQ(sum, 48.0);
}

TEST(InlineCallbackTest, InlineAndHeapPaths)
{
    int hits = 0;
    InlineCallback small([&hits] { ++hits; });
    EXPECT_TRUE(small.isInline()) << "tiny captures must stay inline";
    small();
    EXPECT_EQ(hits, 1);

    std::array<char, 128> big{};
    big[0] = 7;
    InlineCallback large([big, &hits] { hits += big[0]; });
    EXPECT_FALSE(large.isInline());
    large();
    EXPECT_EQ(hits, 8);

    // Move transfers the callable; the source becomes empty.
    InlineCallback moved(std::move(small));
    EXPECT_TRUE(static_cast<bool>(moved));
    EXPECT_FALSE(static_cast<bool>(small)); // NOLINT(bugprone-use-after-move)
    moved();
    EXPECT_EQ(hits, 9);
}

} // namespace
} // namespace smartconf::sim
