/** @file Unit tests for time series and histogram recorders. */

#include <gtest/gtest.h>

#include "sim/metrics.h"

namespace smartconf::sim {
namespace {

TEST(TimeSeriesTest, RecordAndQuery)
{
    TimeSeries ts("mem");
    EXPECT_TRUE(ts.empty());
    ts.record(0, 10.0);
    ts.record(1, 30.0);
    ts.record(2, 20.0);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.max(), 30.0);
    EXPECT_DOUBLE_EQ(ts.last(), 20.0);
    EXPECT_DOUBLE_EQ(ts.mean(), 20.0);
}

TEST(TimeSeriesTest, FirstAbove)
{
    TimeSeries ts;
    ts.record(0, 10.0);
    ts.record(5, 50.0);
    ts.record(9, 90.0);
    EXPECT_EQ(ts.firstAbove(40.0), 5);
    EXPECT_EQ(ts.firstAbove(100.0), -1);
}

TEST(TimeSeriesTest, DownsampleKeepsPeaks)
{
    TimeSeries ts;
    for (Tick t = 0; t < 1000; ++t)
        ts.record(t, t == 500 ? 999.0 : 1.0);
    const auto pts = ts.downsampleMax(10);
    EXPECT_LE(pts.size(), 10u);
    double best = 0.0;
    for (const auto &p : pts)
        best = std::max(best, p.value);
    EXPECT_DOUBLE_EQ(best, 999.0) << "peak must survive downsampling";
}

TEST(TimeSeriesTest, DownsampleNoOpWhenSmall)
{
    TimeSeries ts;
    ts.record(0, 1.0);
    ts.record(1, 2.0);
    EXPECT_EQ(ts.downsampleMax(10).size(), 2u);
}

TEST(TimeSeriesTest, CsvRendering)
{
    TimeSeries ts("used_memory_mb");
    ts.record(10, 123.0);
    const std::string csv = ts.toCsv(TickConverter(10.0));
    EXPECT_NE(csv.find("seconds,used_memory_mb"), std::string::npos);
    EXPECT_NE(csv.find("1,123"), std::string::npos);
}

TEST(HistogramTest, MeanMaxPercentile)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
}

TEST(HistogramTest, EmptyIsZero)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

TEST(HistogramTest, ResetClears)
{
    Histogram h;
    h.record(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(TimeSeriesTest, FirstAboveOnEmptySeries)
{
    TimeSeries ts;
    EXPECT_EQ(ts.firstAbove(0.0), -1);
}

TEST(TimeSeriesTest, DownsampleZeroBucketsIsEmpty)
{
    TimeSeries ts;
    ts.record(0, 1.0);
    ts.record(1, 2.0);
    EXPECT_TRUE(ts.downsampleMax(0).empty())
        << "'at most 0 points' means none, not a crash";
}

TEST(TimeSeriesTest, DownsampleBucketsAtLeastSizeIsIdentity)
{
    TimeSeries ts;
    ts.record(0, 1.0);
    ts.record(3, 4.0);
    ts.record(7, 2.0);
    for (const std::size_t buckets : {3u, 4u, 100u}) {
        const auto pts = ts.downsampleMax(buckets);
        ASSERT_EQ(pts.size(), 3u);
        EXPECT_EQ(pts[0].tick, 0);
        EXPECT_DOUBLE_EQ(pts[1].value, 4.0);
        EXPECT_EQ(pts[2].tick, 7);
    }
}

TEST(TimeSeriesTest, DownsampleSinglePointSurvives)
{
    TimeSeries ts;
    ts.record(42, 9.0);
    const auto pts = ts.downsampleMax(5);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].tick, 42);
    EXPECT_DOUBLE_EQ(pts[0].value, 9.0);
    EXPECT_TRUE(ts.downsampleMax(0).empty());
}

TEST(TimeSeriesTest, DownsampleEmptySeries)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.downsampleMax(0).empty());
    EXPECT_TRUE(ts.downsampleMax(10).empty());
}

TEST(HistogramTest, PercentileCachedAcrossQueriesAndMutations)
{
    // The cached sorted state must be invalidated by record() and give
    // the same nearest-rank answers as a fresh sort at every stage
    // (first query = nth_element path, later queries = sorted lookups).
    Histogram h;
    for (int i = 100; i >= 1; --i)
        h.record(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(90.0), 90.0);
    EXPECT_DOUBLE_EQ(h.percentile(10.0), 10.0);
    h.record(1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
    // 101 values now: nearest-rank p50 is the 51st smallest.
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 51.0);
    // Recording order stays untouched by percentile's scratch work.
    EXPECT_DOUBLE_EQ(h.values().front(), 100.0);
    EXPECT_DOUBLE_EQ(h.values().back(), 1000.0);
}

TEST(HistogramTest, RecordBatchMatchesScalarRecords)
{
    // The per-tick service loops switched to one recordBatch() per
    // tick; the batch must be observably identical to the per-op
    // record() sequence it replaced.
    Histogram scalar;
    Histogram batched;
    const double values[] = {5.0, 1.0, 9.0, 1.0, 3.5, 7.25};
    for (const double v : values)
        scalar.record(v);
    batched.recordBatch(values, 6);

    EXPECT_EQ(scalar.count(), batched.count());
    EXPECT_EQ(scalar.mean(), batched.mean()); // bit-identical sums
    EXPECT_EQ(scalar.max(), batched.max());
    EXPECT_EQ(scalar.percentile(50.0), batched.percentile(50.0));
    EXPECT_EQ(scalar.percentile(99.0), batched.percentile(99.0));
}

TEST(HistogramTest, RecordBatchInvalidatesPercentileCache)
{
    Histogram h;
    const double first[] = {1.0, 2.0, 3.0};
    h.recordBatch(first, 3);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 3.0); // warms the cache
    const double second[] = {10.0};
    h.recordBatch(second, 1);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
}

TEST(HistogramTest, RecordBatchEmptyIsNoop)
{
    Histogram h;
    h.record(4.0);
    h.recordBatch(nullptr, 0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

} // namespace
} // namespace smartconf::sim
