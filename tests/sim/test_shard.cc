#include "sim/shard.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace {

using smartconf::sim::kShardGranule;
using smartconf::sim::kShards;
using smartconf::sim::Rng;
using smartconf::sim::setShardWorkers;
using smartconf::sim::shardBlockCount;
using smartconf::sim::shardFanOut;
using smartconf::sim::shardLayout;
using smartconf::sim::ShardPlane;
using smartconf::sim::ShardSpan;
using smartconf::sim::shardWorkers;

TEST(ShardLayout, BlockCountClampsBetweenOneAndShards)
{
    EXPECT_EQ(shardBlockCount(0), 0u); // empty tick: nothing to fan out
    EXPECT_EQ(shardBlockCount(1), 1u);
    EXPECT_EQ(shardBlockCount(kShardGranule), 1u);
    EXPECT_EQ(shardBlockCount(kShardGranule + 1), 2u);
    EXPECT_EQ(shardBlockCount(kShardGranule * kShards), kShards);
    EXPECT_EQ(shardBlockCount(kShardGranule * kShards * 10), kShards);
}

TEST(ShardLayout, SpansPartitionTheBatchExactly)
{
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{7}, std::size_t{32},
          std::size_t{33}, std::size_t{100}, std::size_t{512},
          std::size_t{517}, std::size_t{5000}}) {
        for (const std::uint64_t seq : {0ull, 1ull, 15ull, 16ull,
                                        12345ull}) {
            ShardSpan spans[kShards];
            const std::size_t blocks = shardLayout(n, seq, spans);
            ASSERT_GE(blocks, 1u);
            ASSERT_LE(blocks, static_cast<std::size_t>(kShards));
            // Contiguous, in order, covering [0, n).
            EXPECT_EQ(spans[0].begin, 0u);
            for (std::size_t b = 1; b < blocks; ++b)
                EXPECT_EQ(spans[b].begin, spans[b - 1].end);
            EXPECT_EQ(spans[blocks - 1].end, n);
            // Distinct lanes per tick: block bodies never share an Rng.
            std::set<std::size_t> lanes;
            for (std::size_t b = 0; b < blocks; ++b) {
                EXPECT_LT(spans[b].lane,
                          static_cast<std::size_t>(kShards));
                lanes.insert(spans[b].lane);
            }
            EXPECT_EQ(lanes.size(), blocks);
        }
    }
}

TEST(ShardLayout, LaneRotatesWithTickSequence)
{
    // Block b of tick seq t lands on lane (t + b) % kShards, so over
    // kShards consecutive small ticks every lane is exercised.
    std::set<std::size_t> first_lanes;
    for (std::uint64_t seq = 0; seq < kShards; ++seq) {
        ShardSpan spans[kShards];
        ASSERT_EQ(shardLayout(8, seq, spans), 1u);
        first_lanes.insert(spans[0].lane);
    }
    EXPECT_EQ(first_lanes.size(), static_cast<std::size_t>(kShards));
}

TEST(ShardLayout, PureFunctionOfSizeAndSequence)
{
    ShardSpan a[kShards], b[kShards];
    const std::size_t na = shardLayout(1000, 42, a);
    const std::size_t nb = shardLayout(1000, 42, b);
    ASSERT_EQ(na, nb);
    for (std::size_t i = 0; i < na; ++i) {
        EXPECT_EQ(a[i].begin, b[i].begin);
        EXPECT_EQ(a[i].end, b[i].end);
        EXPECT_EQ(a[i].lane, b[i].lane);
    }
}

TEST(ShardPlane, LaneStreamsAreDistinctAndStable)
{
    ShardPlane p1(Rng(99)), p2(Rng(99));
    std::set<std::uint64_t> firsts;
    for (std::size_t s = 0; s < kShards; ++s) {
        const std::uint64_t v1 = p1.lane(s).next();
        const std::uint64_t v2 = p2.lane(s).next();
        EXPECT_EQ(v1, v2); // same base seed -> same lane streams
        firsts.insert(v1);
    }
    firsts.insert(p1.control().next());
    // Control + 16 jump-derived lanes all disagree on their first word.
    EXPECT_EQ(firsts.size(), static_cast<std::size_t>(kShards) + 1);
}

TEST(ShardPlane, OpsCountersAccumulatePerLane)
{
    ShardPlane plane(Rng(1));
    plane.addOps(3, 10);
    plane.addOps(3, 5);
    plane.addOps(0, 1);
    EXPECT_EQ(plane.opsPerShard()[3], 15u);
    EXPECT_EQ(plane.opsPerShard()[0], 1u);
    EXPECT_EQ(plane.opsPerShard()[1], 0u);
}

TEST(ShardFanOut, RunsEveryBlockExactlyOnceSerially)
{
    setShardWorkers(1);
    std::vector<int> hits(kShards, 0);
    shardFanOut(kShards, [&](std::size_t b) { ++hits[b]; });
    for (std::size_t b = 0; b < kShards; ++b)
        EXPECT_EQ(hits[b], 1);
}

TEST(ShardFanOut, RunsEveryBlockExactlyOnceForked)
{
    setShardWorkers(4);
    EXPECT_EQ(shardWorkers(), 4u);
    std::atomic<int> hits[kShards] = {};
    shardFanOut(kShards,
                [&](std::size_t b) { hits[b].fetch_add(1); });
    for (std::size_t b = 0; b < kShards; ++b)
        EXPECT_EQ(hits[b].load(), 1);
    setShardWorkers(1);
}

TEST(ShardFanOut, WorkerCountDoesNotChangeLaneDraws)
{
    // The determinism contract at generator level: each block draws
    // from its own lane into its own slots, so the filled buffer is
    // identical serial vs forked.
    auto fill = [](std::vector<std::uint64_t> &out) {
        ShardPlane plane(Rng(77));
        ShardSpan spans[kShards];
        const std::size_t n = out.size();
        const std::size_t blocks = shardLayout(n, 5, spans);
        std::uint64_t *const p = out.data();
        shardFanOut(blocks, [&](std::size_t b) {
            plane.lane(spans[b].lane)
                .fillRaw(p + spans[b].begin,
                         spans[b].end - spans[b].begin);
        });
    };
    std::vector<std::uint64_t> serial(2000), forked(2000);
    setShardWorkers(1);
    fill(serial);
    setShardWorkers(4);
    fill(forked);
    setShardWorkers(1);
    EXPECT_EQ(serial, forked);
}

} // namespace
