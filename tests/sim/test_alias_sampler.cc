/**
 * @file
 * Distributional correctness of the Walker/Vose alias-table Zipfian
 * sampler.
 *
 * The O(1) sampler replaced the Gray et al. pow()-based rejection
 * sampler, so these tests pin down the property the swap must
 * preserve: draws follow the exact Zipf pmf.  A chi-square
 * goodness-of-fit test runs over the (n, theta) grid the case studies
 * use; head ranks get individual bins and the tail is aggregated into
 * logarithmic bins so every bin keeps an expected count >= 5 (the
 * classical validity rule).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/alias_sampler.h"
#include "sim/rng.h"

namespace smartconf::sim {
namespace {

/**
 * Upper critical value of chi-square with @p df degrees of freedom at
 * significance alpha = 0.001, via the Wilson–Hilferty cube
 * approximation (accurate to a fraction of a percent for df >= 3).
 */
double
chiSquareCritical(double df)
{
    const double z = 3.0902; // Phi^-1(0.999)
    const double a = 2.0 / (9.0 * df);
    const double c = 1.0 - a + z * std::sqrt(a);
    return df * c * c * c;
}

struct Bin
{
    std::uint64_t lo = 0; ///< first rank in the bin (inclusive)
    std::uint64_t hi = 0; ///< last rank in the bin (inclusive)
    double expected = 0.0;
    std::uint64_t observed = 0;
};

/**
 * Build bins over ranks [0, n): individual bins while the per-rank
 * expectation stays >= @p min_expected, then geometrically widening
 * tail bins, merging the remainder so no bin falls below the floor.
 */
std::vector<Bin>
makeBins(const ZipfianGenerator &zipf, double draws, double min_expected)
{
    const std::uint64_t n = zipf.population();
    std::vector<Bin> bins;
    std::uint64_t i = 0;
    // Head: one bin per rank while each is individually testable.
    while (i < n && draws * zipf.pmf(i) >= min_expected) {
        bins.push_back({i, i, draws * zipf.pmf(i), 0});
        ++i;
        if (bins.size() >= 64)
            break; // enough head resolution; switch to ranged bins
    }
    // Tail: geometric ranges, each accumulating until both wide enough
    // and heavy enough.
    std::uint64_t width = 1;
    while (i < n) {
        Bin b;
        b.lo = i;
        double expected = 0.0;
        std::uint64_t hi = i;
        while (hi < n &&
               (expected < min_expected || hi - b.lo + 1 < width)) {
            expected += draws * zipf.pmf(hi);
            ++hi;
        }
        b.hi = hi - 1;
        b.expected = expected;
        bins.push_back(b);
        i = hi;
        width *= 2;
    }
    // The last bin can come up light; merge it into its neighbour.
    while (bins.size() > 1 && bins.back().expected < min_expected) {
        Bin last = bins.back();
        bins.pop_back();
        bins.back().hi = last.hi;
        bins.back().expected += last.expected;
    }
    return bins;
}

/** Chi-square GOF statistic of @p samples under the binning. */
double
chiSquare(std::vector<Bin> &bins, const std::vector<std::uint64_t> &samples)
{
    for (const std::uint64_t s : samples) {
        // Binary search: bins partition [0, n) in rank order.
        std::size_t lo = 0, hi = bins.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (s > bins[mid].hi)
                lo = mid + 1;
            else
                hi = mid;
        }
        ++bins[lo].observed;
    }
    double stat = 0.0;
    for (const Bin &b : bins) {
        const double d =
            static_cast<double>(b.observed) - b.expected;
        stat += d * d / b.expected;
    }
    return stat;
}

class AliasSamplerGof
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>>
{};

TEST_P(AliasSamplerGof, MatchesZipfPmf)
{
    const auto [n, theta] = GetParam();
    const std::size_t draws = n <= 1000 ? 200000 : 400000;

    ZipfianGenerator zipf(n, theta);
    Rng rng(0x5eed0001);
    std::vector<std::uint64_t> samples(draws);
    zipf.sampleInto(rng, samples.data(), samples.size());

    std::vector<Bin> bins =
        makeBins(zipf, static_cast<double>(draws), 5.0);
    ASSERT_GE(bins.size(), 3u);
    const double stat = chiSquare(bins, samples);
    const double df = static_cast<double>(bins.size() - 1);
    const double crit = chiSquareCritical(df);
    EXPECT_LT(stat, crit)
        << "chi2=" << stat << " df=" << df << " crit(alpha=.001)=" << crit
        << " for n=" << n << " theta=" << theta;

    // All probability mass accounted for (bins partition [0, n)).
    double total = 0.0;
    for (const Bin &b : bins)
        total += b.expected;
    EXPECT_NEAR(total, static_cast<double>(draws), draws * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    CaseStudyGrid, AliasSamplerGof,
    ::testing::Combine(::testing::Values(std::uint64_t{100},
                                         std::uint64_t{100000}),
                       ::testing::Values(0.5, 0.99)));

TEST(AliasSampler, DrawsStayInRange)
{
    const AliasTable table(std::vector<double>{5.0, 1.0, 0.25});
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(table.sample(rng), 3u);
}

TEST(AliasSampler, OneNextWordPerDraw)
{
    // The contract the generators rely on: swapping sample() for any
    // other single-uniform consumer keeps the shared stream aligned.
    ZipfianGenerator zipf(1000, 0.99);
    Rng a(77), b(77);
    for (int i = 0; i < 1000; ++i)
        (void)zipf.sample(a);
    for (int i = 0; i < 1000; ++i)
        (void)b.next();
    EXPECT_EQ(a.next(), b.next());
}

TEST(AliasSampler, SampleIntoMatchesRepeatedSample)
{
    ZipfianGenerator zipf(5000, 0.5);
    Rng a(123), b(123);
    std::vector<std::uint64_t> batch(2048);
    zipf.sampleInto(a, batch.data(), batch.size());
    for (const std::uint64_t expected : batch)
        EXPECT_EQ(zipf.sample(b), expected);
}

TEST(AliasSampler, ZipfTablesAreShared)
{
    const auto t1 = AliasTable::zipfian(4242, 0.9);
    const auto t2 = AliasTable::zipfian(4242, 0.9);
    EXPECT_EQ(t1.get(), t2.get());
    EXPECT_NE(t1.get(), AliasTable::zipfian(4242, 0.8).get());
}

TEST(AliasSampler, DegenerateSingleItem)
{
    const AliasTable table(std::vector<double>{3.0});
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(table.sample(rng), 0u);
}

} // namespace
} // namespace smartconf::sim
