/** @file Unit tests for the virtual clock and tick conversion. */

#include <gtest/gtest.h>

#include "sim/clock.h"

namespace smartconf::sim {
namespace {

TEST(Clock, StartsAtZeroAndAdvances)
{
    Clock c;
    EXPECT_EQ(c.now(), 0);
    c.advanceBy(5);
    EXPECT_EQ(c.now(), 5);
    c.advanceTo(10);
    EXPECT_EQ(c.now(), 10);
}

TEST(Clock, NeverMovesBackwards)
{
    Clock c;
    c.advanceTo(100);
    c.advanceTo(50);
    EXPECT_EQ(c.now(), 100);
}

TEST(Clock, Reset)
{
    Clock c;
    c.advanceBy(42);
    c.reset();
    EXPECT_EQ(c.now(), 0);
}

TEST(TickConverterTest, RoundTrip)
{
    TickConverter conv(10.0); // 100 ms ticks
    EXPECT_DOUBLE_EQ(conv.toSeconds(6000), 600.0);
    EXPECT_EQ(conv.toTicks(600.0), 6000);
    EXPECT_EQ(conv.toTicks(conv.toSeconds(1234)), 1234);
}

TEST(TickConverterTest, RoundsNearestTick)
{
    TickConverter conv(10.0);
    EXPECT_EQ(conv.toTicks(0.04), 0);
    EXPECT_EQ(conv.toTicks(0.06), 1);
}

} // namespace
} // namespace smartconf::sim
