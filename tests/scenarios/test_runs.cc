/**
 * @file The headline result, per scenario: SmartConf satisfies the
 * constraint that the buggy default violates (paper Sec. 6.2).
 */

#include <gtest/gtest.h>

#include "scenarios/scenario.h"

namespace smartconf::scenarios {
namespace {

constexpr std::uint64_t kSeed = 1;

class RunSweep : public ::testing::TestWithParam<const char *>
{};

TEST_P(RunSweep, SmartConfSatisfiesTheConstraint)
{
    const auto s = makeScenario(GetParam());
    const ScenarioResult r = s->run(Policy::smart(), kSeed);
    EXPECT_FALSE(r.violated)
        << s->info().id << " violated at t=" << r.violation_time_s
        << "s (worst " << r.worst_goal_metric << " vs goal "
        << r.goal_value << ")";
}

TEST_P(RunSweep, BuggyDefaultViolates)
{
    const auto s = makeScenario(GetParam());
    const ScenarioResult r = s->run(
        Policy::makeStatic(s->info().buggy_default, "Buggy-Default"),
        kSeed);
    EXPECT_TRUE(r.violated)
        << s->info().id << ": the original default must fail";
    EXPECT_GE(r.violation_time_s, 0.0);
}

TEST_P(RunSweep, ResultsAreReproducible)
{
    const auto s = makeScenario(GetParam());
    const ScenarioResult a = s->run(Policy::smart(), 7);
    const ScenarioResult b = s->run(Policy::smart(), 7);
    EXPECT_EQ(a.violated, b.violated);
    EXPECT_DOUBLE_EQ(a.tradeoff, b.tradeoff);
    EXPECT_DOUBLE_EQ(a.worst_goal_metric, b.worst_goal_metric);
}

TEST_P(RunSweep, SeriesArePopulated)
{
    const auto s = makeScenario(GetParam());
    const ScenarioResult r = s->run(Policy::smart(), kSeed);
    // Event-driven sensors (per flush / per du chunk) yield sparse
    // series; per-tick sensors yield thousands of points.
    EXPECT_GT(r.perf_series.size(), 10u);
    EXPECT_GT(r.conf_series.size(), 100u);
    EXPECT_FALSE(r.tradeoff_series.empty());
    EXPECT_GT(r.tradeoff, 0.0);
    EXPECT_GT(r.mean_conf, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, RunSweep,
                         ::testing::Values("CA6059", "HB2149", "HB3813",
                                           "HB6728", "HD4995",
                                           "MR2820"));

TEST(RunDetails, Hb3813PatchDefaultFailsInPhaseTwo)
{
    const auto s = makeScenario("HB3813");
    const ScenarioResult r = s->run(
        Policy::makeStatic(s->info().patch_default, "Patch-Default"),
        kSeed);
    EXPECT_TRUE(r.violated);
    // Phase 2 starts at 200 s: the patched default survives phase 1.
    EXPECT_GT(r.violation_time_s, 200.0);
}

TEST(RunDetails, Hb3813BuggyDefaultFailsAlmostImmediately)
{
    const auto s = makeScenario("HB3813");
    const ScenarioResult r = s->run(
        Policy::makeStatic(s->info().buggy_default, "Buggy-Default"),
        kSeed);
    EXPECT_TRUE(r.violated);
    EXPECT_LT(r.violation_time_s, 60.0);
}

TEST(RunDetails, Ca6059PatchDefaultSurvivesButIsSlow)
{
    const auto s = makeScenario("CA6059");
    const ScenarioResult patch = s->run(
        Policy::makeStatic(s->info().patch_default, "Patch-Default"),
        kSeed);
    EXPECT_FALSE(patch.violated)
        << "CA6059's patched default meets the constraint";
    const ScenarioResult smart = s->run(Policy::smart(), kSeed);
    EXPECT_GT(smart.tradeoff, patch.tradeoff)
        << "but SmartConf gets better write latency";
}

TEST(RunDetails, Hb2149GoalChangeIsHonoured)
{
    // Phase 2 tightens the block-latency goal from 10 s to 5 s; after
    // the switch every block must respect the new goal.
    const auto s = makeScenario("HB2149");
    const ScenarioResult r = s->run(Policy::smart(), kSeed);
    EXPECT_FALSE(r.violated);
    double worst_late = 0.0;
    for (const auto &pt : r.perf_series.points()) {
        if (pt.tick > 3300) // well past the boundary + one flush
            worst_late = std::max(worst_late, pt.value);
    }
    EXPECT_LE(worst_late, 52.0) << "5 s goal (50 ticks) enforced";
}

TEST(RunDetails, Mr2820SmartConfAdaptsTheGate)
{
    const auto s = makeScenario("MR2820");
    const ScenarioResult r = s->run(Policy::smart(), kSeed);
    EXPECT_FALSE(r.violated);
    // The gate must actually move (dynamic adjustment), unlike statics.
    double lo = 1e18, hi = 0.0;
    for (const auto &pt : r.conf_series.points()) {
        lo = std::min(lo, pt.value);
        hi = std::max(hi, pt.value);
    }
    EXPECT_GT(hi - lo, 50.0);
}

TEST(RunDetails, SmartConfBeatsBestStaticSomewhere)
{
    // Fig. 5's headline: SmartConf >= the best static configuration.
    // Checked in aggregate across the three throughput-style cases.
    int wins = 0;
    for (const char *id : {"HB3813", "CA6059", "MR2820"}) {
        const auto s = makeScenario(id);
        const ScenarioResult smart = s->run(Policy::smart(), kSeed);
        double best_static = 0.0;
        for (const double c : s->info().static_candidates) {
            const ScenarioResult r =
                s->run(Policy::makeStatic(c), kSeed);
            if (!r.violated)
                best_static = std::max(best_static, r.tradeoff);
        }
        if (smart.tradeoff >= best_static * 0.999)
            ++wins;
    }
    EXPECT_GE(wins, 2);
}

} // namespace
} // namespace smartconf::scenarios
