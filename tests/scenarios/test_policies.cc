/** @file Unit tests for evaluation policies. */

#include <gtest/gtest.h>

#include "scenarios/scenario.h"

namespace smartconf::scenarios {
namespace {

TEST(Policy, StaticFactory)
{
    const Policy p = Policy::makeStatic(90.0);
    EXPECT_EQ(p.kind, Policy::Kind::Static);
    EXPECT_DOUBLE_EQ(p.value, 90.0);
    EXPECT_FALSE(p.isSmart());
    EXPECT_NE(p.label.find("Static"), std::string::npos);
}

TEST(Policy, StaticCustomLabel)
{
    const Policy p = Policy::makeStatic(100.0, "Patch-Default");
    EXPECT_EQ(p.label, "Patch-Default");
}

TEST(Policy, SmartFactory)
{
    const Policy p = Policy::smart();
    EXPECT_EQ(p.kind, Policy::Kind::Smart);
    EXPECT_TRUE(p.isSmart());
    EXPECT_FALSE(p.pole_override.has_value());
}

TEST(Policy, AblationFactories)
{
    const Policy sp = Policy::singlePole(0.9);
    EXPECT_EQ(sp.kind, Policy::Kind::SmartSinglePole);
    ASSERT_TRUE(sp.pole_override.has_value());
    EXPECT_DOUBLE_EQ(*sp.pole_override, 0.9);

    const Policy nv = Policy::noVirtualGoal();
    EXPECT_EQ(nv.kind, Policy::Kind::SmartNoVirtualGoal);
    EXPECT_TRUE(nv.isSmart());
}

TEST(Registry, AllSixScenariosPresent)
{
    const auto all = makeAllScenarios();
    ASSERT_EQ(all.size(), 6u);
    const char *expected[] = {"CA6059", "HB2149", "HB3813",
                              "HB6728", "HD4995", "MR2820"};
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(all[i]->info().id, expected[i]);
}

TEST(Registry, LookupById)
{
    EXPECT_NE(makeScenario("HB3813"), nullptr);
    EXPECT_EQ(makeScenario("XX0000"), nullptr);
}

TEST(Registry, Table6FlagsMatchPaper)
{
    // Table 6 ?-?-? flags: conditional, direct, hard.
    const struct
    {
        const char *id;
        bool conditional, direct, hard;
    } rows[] = {
        {"CA6059", false, false, true},
        {"HB2149", true, true, false},
        {"HB3813", false, false, true},
        {"HB6728", false, false, true},
        {"HD4995", true, false, false},
        {"MR2820", true, true, true},
    };
    for (const auto &row : rows) {
        const auto s = makeScenario(row.id);
        ASSERT_NE(s, nullptr) << row.id;
        EXPECT_EQ(s->info().conditional, row.conditional) << row.id;
        EXPECT_EQ(s->info().direct, row.direct) << row.id;
        EXPECT_EQ(s->info().hard, row.hard) << row.id;
    }
}

TEST(Registry, ScenarioMetadataComplete)
{
    for (const auto &s : makeAllScenarios()) {
        const ScenarioInfo &info = s->info();
        EXPECT_FALSE(info.conf_name.empty()) << info.id;
        EXPECT_FALSE(info.metric_name.empty()) << info.id;
        EXPECT_FALSE(info.description.empty()) << info.id;
        EXPECT_FALSE(info.profiling_workload.empty()) << info.id;
        EXPECT_FALSE(info.phase1_workload.empty()) << info.id;
        EXPECT_FALSE(info.phase2_workload.empty()) << info.id;
        EXPECT_EQ(info.profiling_settings.size(), 4u)
            << info.id << ": the paper profiles 4 settings";
        EXPECT_GE(info.static_candidates.size(), 8u) << info.id;
        EXPECT_FALSE(info.tradeoff_unit.empty()) << info.id;
    }
}

} // namespace
} // namespace smartconf::scenarios
