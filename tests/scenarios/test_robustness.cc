/**
 * @file Cross-seed robustness: the paper's probabilistic guarantee in
 * practice.  SmartConf must satisfy every scenario's constraint across
 * workload seeds it was never tuned on, and the design-choice claims
 * behind the ablation benches must hold.
 */

#include <gtest/gtest.h>

#include "scenarios/hb3813.h"
#include "scenarios/scenario.h"

namespace smartconf::scenarios {
namespace {

class SeedSweep : public ::testing::TestWithParam<const char *>
{};

TEST_P(SeedSweep, SmartConfHoldsAcrossSeeds)
{
    const auto s = makeScenario(GetParam());
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const ScenarioResult r = s->run(Policy::smart(), seed);
        EXPECT_FALSE(r.violated)
            << s->info().id << " seed " << seed << " worst "
            << r.worst_goal_metric << " vs goal " << r.goal_value;
    }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, SeedSweep,
                         ::testing::Values("CA6059", "HB2149", "HB3813",
                                           "HB6728", "HD4995",
                                           "MR2820"));

TEST(Robustness, ProfilingBudgetBarelyMatters)
{
    // Sec. 5.5: "effective and robust controllers without intensive
    // profiling" — even 3 samples per setting must stay safe.
    for (int samples : {3, 10, 50}) {
        Hb3813Options opts;
        opts.profile_samples = samples;
        Hb3813Scenario scenario(opts);
        const ScenarioResult r = scenario.run(Policy::smart(), 1);
        EXPECT_FALSE(r.violated) << samples << " samples/setting";
    }
}

TEST(Robustness, SparseControlInvocationLosesTheGuarantee)
{
    // The flip side of invoking the controller at every use: consult
    // it only once a second and bursts outrun it.
    Hb3813Options tight;
    tight.control_period = 1;
    EXPECT_FALSE(Hb3813Scenario(tight).run(Policy::smart(), 1).violated);

    Hb3813Options sparse;
    sparse.control_period = 20; // every 2 s
    EXPECT_TRUE(Hb3813Scenario(sparse).run(Policy::smart(), 1).violated)
        << "2 s reaction latency cannot absorb 30 MB/s bursts";
}

TEST(Robustness, StaticOptimalIsSeedFragile)
{
    // The motivation for dynamic adjustment: a static setting that
    // looks optimal on one workload trace fails on another (MR2820's
    // 175 MB gate passes seeds 1-5 but fails later ones).
    const auto s = makeScenario("MR2820");
    bool some_seed_fails = false;
    for (std::uint64_t seed = 1; seed <= 8 && !some_seed_fails; ++seed) {
        some_seed_fails =
            s->run(Policy::makeStatic(175.0), seed).violated;
    }
    EXPECT_TRUE(some_seed_fails);
}

} // namespace
} // namespace smartconf::scenarios
