/**
 * @file Cross-module integration tests: SmartConf file formats driving
 * a simulated server end-to-end, and the Fig. 8 interacting-controller
 * setup.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/sensor.h"
#include "core/smartconf.h"
#include "kvstore/server.h"
#include "scenarios/hb3813.h"
#include "workload/ycsb.h"

namespace smartconf::scenarios {
namespace {

/**
 * Full pipeline: profile HB3813, serialize the profiling store to the
 * <Conf>.SmartConf.sys format, reload everything from text (as a real
 * deployment would at startup), and drive the simulated region server
 * with the reloaded controller.
 */
TEST(Integration, FileFormatsDriveTheControllerEndToEnd)
{
    // 1. Profile and capture the store.
    Hb3813Scenario scenario;
    const ProfileSummary direct = scenario.profile(2024);

    ProfileFile store;
    store.conf = "ipc.server.max.queue.size";
    store.summary = direct;
    const std::string store_text = formatProfileFile(store);

    // 2. Boot a runtime purely from configuration text.
    SmartConfRuntime rt;
    rt.loadSysText(
        "ipc.server.max.queue.size @ memory_consumption_max\n"
        "ipc.server.max.queue.size = 0\n"
        "ipc.server.max.queue.size.min = 0\n"
        "ipc.server.max.queue.size.max = 5000\n");
    rt.loadUserConfText(
        "memory_consumption_max = 495\n"
        "memory_consumption_max.hard = 1\n");
    rt.loadProfileText(store_text);

    SmartConfI sc(rt, "ipc.server.max.queue.size");
    ASSERT_TRUE(sc.managed());

    // 3. Drive the simulated server for 100 s.
    kvstore::KvServerParams sp;
    sp.heap_mb = 495.0;
    sp.request_queue_items = 0;
    sp.other_base_mb = 200.0;
    sp.other_walk_mb = 6.0;
    sp.other_max_mb = 300.0;
    kvstore::KvServer server(sp, sim::Rng(5));
    workload::YcsbParams wp;
    wp.write_fraction = 1.0;
    wp.ops_per_tick = 10.0;
    workload::YcsbGenerator gen(wp, sim::Rng(6));

    std::vector<workload::Op> ops;
    for (sim::Tick t = 0; t < 1000; ++t) {
        gen.tickInto(ops);
        server.accept(ops, t);
        server.step(t);
        sc.setPerf(server.heap().usedMb(),
                   static_cast<double>(server.requestQueue().size()));
        server.requestQueue().setMaxItems(
            static_cast<std::size_t>(std::max(0, sc.getConf())));
    }
    EXPECT_FALSE(server.crashed());
    EXPECT_GT(server.completedOps(), 1000u);
    EXPECT_GT(server.requestQueue().maxItems(), 10u)
        << "controller opened the queue from its 0 start";
}

/**
 * Fig. 8: HB3813's request queue and HB6728's response queue attached
 * to one super-hard memory goal on a single heap.  Both controllers
 * must coordinate (interaction factor 2) and the constraint must hold
 * while reads join at t = 50 s.
 */
TEST(Integration, InteractingControllersShareTheHeap)
{
    Hb3813Scenario scenario;
    const ProfileSummary summary = scenario.profile(99);

    SmartConfRuntime rt;
    rt.declareConf({"req.q", "mem", 0.0, 0.0, 5000.0});
    rt.declareConf({"resp.q", "mem", 8.0, 1.0, 5000.0});
    Goal g;
    g.metric = "mem";
    g.value = 495.0;
    g.superHard = true;
    g.hard = true;
    rt.declareGoal(g);
    rt.installProfile("req.q", summary);
    rt.installProfile("resp.q", summary);

    SmartConfI req(rt, "req.q");
    SmartConfI resp(rt, "resp.q");
    EXPECT_EQ(rt.coordinator().interactionCount("mem"), 2u);

    kvstore::KvServerParams sp;
    sp.heap_mb = 495.0;
    sp.request_queue_items = 0;
    sp.response_queue_mb = 8.0;
    sp.other_base_mb = 150.0;
    sp.other_walk_mb = 5.0;
    sp.other_max_mb = 220.0;
    kvstore::KvServer server(sp, sim::Rng(7));

    workload::YcsbParams wp;
    wp.write_fraction = 1.0;
    wp.ops_per_tick = 18.0; // above the service rate: queues back up
    wp.request_size_mb = 1.0;
    workload::YcsbGenerator gen(wp, sim::Rng(8));

    double worst = 0.0;
    std::vector<workload::Op> ops;
    for (sim::Tick t = 0; t < 2400; ++t) {
        if (t == 500) {
            auto p = gen.params();
            p.write_fraction = 0.5; // reads join at 50 s
            p.request_size_mb = 1.5;
            gen.setParams(p);
        }
        gen.tickInto(ops);
        server.accept(ops, t);
        server.step(t);
        const double mem = server.heap().usedMb();
        worst = std::max(worst, mem);

        req.setPerf(mem, static_cast<double>(
                             server.requestQueue().size()));
        server.requestQueue().setMaxItems(static_cast<std::size_t>(
            std::max(0, req.getConf())));
        resp.setPerf(server.heap().usedMb(),
                     server.responseQueue().bytesMb());
        server.responseQueue().setMaxMb(
            std::max(1.0, resp.getConfReal()));
    }
    EXPECT_FALSE(server.crashed());
    EXPECT_LE(worst, 495.0) << "shared hard constraint held";
    EXPECT_GT(server.requestQueue().maxItems(), 0u);
    EXPECT_GT(server.responseQueue().maxMb(), 1.0);
}

/** Profiling and evaluation workloads differ (Sec. 6.1 principle). */
TEST(Integration, ControllerSurvivesWorkloadItNeverSaw)
{
    Hb3813Scenario scenario;
    // Evaluate on five different seeds; the controller was profiled on
    // a seed derived differently inside run().
    for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
        const ScenarioResult r = scenario.run(Policy::smart(), seed);
        EXPECT_FALSE(r.violated) << "seed " << seed;
    }
}

} // namespace
} // namespace smartconf::scenarios

namespace smartconf::scenarios {
namespace {

/**
 * Tail-latency SLA control: the paper names "99 percentile read
 * latency" as a typical (even super-hard) goal.  A p99 sensor feeds a
 * controller that adjusts the request-queue bound: shorter queues mean
 * shorter queueing delays, so p99 tracks the SLA while the queue stays
 * as large (and the throughput as high) as the SLA permits.
 */
TEST(Integration, TailLatencySlaThroughPercentileSensor)
{
    SmartConfRuntime rt;
    rt.declareConf({"max.queue.size", "p99_delay_ticks", 200.0, 1.0,
                    2000.0});
    Goal g;
    g.metric = "p99_delay_ticks";
    g.value = 12.0; // 1.2 s tail budget
    rt.declareGoal(g);
    ProfileSummary s;
    // Queueing delay ~ queue length / service rate (12/ tick).
    s.alpha = 1.0 / 12.0;
    s.pole = 0.5;
    rt.installProfile("max.queue.size", s);
    SmartConfI sc(rt, "max.queue.size");

    kvstore::KvServerParams sp;
    sp.heap_mb = 100000.0; // memory is not the constraint here
    sp.request_queue_items = 200;
    sp.service_ops_per_tick = 12.0;
    sp.other_walk_mb = 0.0;
    kvstore::KvServer server(sp, sim::Rng(12));
    workload::YcsbParams wp;
    wp.write_fraction = 1.0;
    wp.ops_per_tick = 14.0; // oversubscribed: the queue would explode
    workload::YcsbGenerator gen(wp, sim::Rng(13));

    WindowPercentileSensor p99(99.0, 256);
    std::size_t delays_seen = 0;
    double late_p99 = 0.0;
    std::vector<workload::Op> ops;
    for (sim::Tick t = 0; t < 4000; ++t) {
        gen.tickInto(ops);
        server.accept(ops, t);
        server.step(t);
        // feed every completed op's queueing delay into the sensor
        const auto &delays = server.queueDelays().values();
        for (; delays_seen < delays.size(); ++delays_seen)
            p99.observe(delays[delays_seen]);
        // The percentile window spans ~21 ticks of completions, so the
        // controller is consulted on that cadence — reacting faster
        // than the sensor can observe would ratchet the bound down.
        if (t % 25 == 0) {
            sc.setPerf(p99.read(), static_cast<double>(
                                       server.requestQueue().size()));
            server.requestQueue().setMaxItems(static_cast<std::size_t>(
                std::max(1, sc.getConf())));
        }
        if (t > 3000)
            late_p99 = p99.read();
    }
    EXPECT_LE(late_p99, 16.0) << "tail latency tracks the SLA";
    EXPECT_GT(server.requestQueue().maxItems(), 2u)
        << "the bound is not collapsed to nothing";
    EXPECT_GT(server.completedOps(), 20000u);
}

} // namespace
} // namespace smartconf::scenarios

namespace smartconf::scenarios {
namespace {

/**
 * Sec. 4.3: "When users specify goals that cannot possibly be
 * satisfied, SmartConf makes its best effort towards the goal and
 * alerts users that the goal is unreachable."  Here the user demands
 * less memory than the server's own baseline consumes.
 */
TEST(Integration, ImpossibleGoalBestEffortPlusAlert)
{
    Hb3813Scenario donor;
    const ProfileSummary model = donor.profile(21);

    SmartConfRuntime rt;
    rt.declareConf({"max.queue.size", "mem", 50.0, 0.0, 5000.0});
    Goal g;
    g.metric = "mem";
    g.value = 150.0; // below the ~200 MB baseline: unreachable
    g.hard = true;
    rt.declareGoal(g);
    rt.installProfile("max.queue.size", model);

    int alerts = 0;
    rt.setAlertHandler([&alerts](const std::string &conf,
                                 const std::string &msg) {
        ++alerts;
        EXPECT_EQ(conf, "max.queue.size");
        EXPECT_NE(msg.find("unreachable"), std::string::npos);
    });

    SmartConfI sc(rt, "max.queue.size");
    kvstore::KvServerParams sp;
    sp.heap_mb = 495.0;
    sp.request_queue_items = 50;
    sp.other_base_mb = 200.0;
    sp.other_walk_mb = 2.0;
    sp.other_max_mb = 220.0;
    kvstore::KvServer server(sp, sim::Rng(31));
    workload::YcsbParams wp;
    wp.write_fraction = 1.0;
    wp.ops_per_tick = 10.0;
    workload::YcsbGenerator gen(wp, sim::Rng(32));

    std::vector<workload::Op> ops;
    for (sim::Tick t = 0; t < 300; ++t) {
        gen.tickInto(ops);
        server.accept(ops, t);
        server.step(t);
        sc.setPerf(server.heap().usedMb(),
                   static_cast<double>(server.requestQueue().size()));
        server.requestQueue().setMaxItems(static_cast<std::size_t>(
            std::max(0, sc.getConf())));
    }

    // Best effort: the queue is squeezed to nothing...
    EXPECT_EQ(server.requestQueue().maxItems(), 0u);
    // ...and the user is told exactly once per saturation episode.
    EXPECT_EQ(alerts, 1);
    EXPECT_EQ(rt.alertCount(), 1);
}

} // namespace
} // namespace smartconf::scenarios
