/**
 * @file Fine-grained behavioural assertions per case study: the
 * mechanism each scenario exists to demonstrate, checked on its own
 * time series rather than only on end-of-run aggregates.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "scenarios/hb3813.h"
#include "scenarios/scenario.h"

namespace smartconf::scenarios {
namespace {

constexpr std::uint64_t kSeed = 1;

double
meanBetween(const sim::TimeSeries &ts, sim::Tick lo, sim::Tick hi)
{
    double acc = 0.0;
    int n = 0;
    for (const auto &pt : ts.points()) {
        if (pt.tick >= lo && pt.tick < hi) {
            acc += pt.value;
            ++n;
        }
    }
    return n > 0 ? acc / n : 0.0;
}

double
maxBetween(const sim::TimeSeries &ts, sim::Tick lo, sim::Tick hi)
{
    double best = 0.0;
    for (const auto &pt : ts.points()) {
        if (pt.tick >= lo && pt.tick < hi)
            best = std::max(best, pt.value);
    }
    return best;
}

TEST(BehaviourHb3813, QueueBoundHalvesAfterTheRequestSizeShift)
{
    // Fig. 6c: when request size doubles, the bound the controller is
    // willing to open up to shrinks (each queued item now costs twice
    // the heap).  The full halving shows at binding moments — the
    // Fig. 6 bench prints those — while the series peak also includes
    // slack the controller grants an empty queue, so the drop here is
    // partial but must be clearly present.
    const auto s = makeScenario("HB3813");
    const ScenarioResult r = s->run(Policy::smart(), kSeed);
    const double before = maxBetween(r.conf_series, 500, 2000);
    const double after = maxBetween(r.conf_series, 3000, 7000);
    EXPECT_LT(after, before * 0.85)
        << "bound " << before << " -> " << after;
    EXPECT_GT(after, before * 0.3);
}

TEST(BehaviourHb3813, MemoryRidesNearTheVirtualGoal)
{
    // Fig. 6b: SmartConf is "never too conservative or too aggressive".
    Hb3813Scenario scenario;
    const ProfileSummary p = scenario.profile(kSeed ^ 0x70F11E);
    const double vgoal = (1.0 - p.lambda) * 495.0;
    const ScenarioResult r = scenario.run(Policy::smart(), kSeed);
    // Memory peaks approach the virtual goal...
    EXPECT_GT(r.worst_goal_metric, vgoal - 60.0);
    // ...but the hard constraint is never crossed.
    EXPECT_LE(r.worst_goal_metric, 495.0);
}

TEST(BehaviourCa6059, CacheShiftShrinksTheMemtableCap)
{
    // Phase 2 hands 150 MB of heap to the read cache; the memtable cap
    // must give that room back.
    const auto s = makeScenario("CA6059");
    const ScenarioResult r = s->run(Policy::smart(), kSeed);
    const double before = meanBetween(r.conf_series, 1000, 2000);
    const double after = meanBetween(r.conf_series, 3500, 7000);
    EXPECT_LT(after, before - 80.0)
        << "cap " << before << " -> " << after;
}

TEST(BehaviourHb2149, BlockDurationsTrackTheActiveGoal)
{
    const auto s = makeScenario("HB2149");
    const ScenarioResult r = s->run(Policy::smart(), kSeed);
    // After convergence in phase 1, blocks sit near (but under) 100
    // ticks; in phase 2 near 50.
    double p1_max = 0.0, p2_max = 0.0;
    for (const auto &pt : r.perf_series.points()) {
        if (pt.tick > 1000 && pt.tick < 3000)
            p1_max = std::max(p1_max, pt.value);
        if (pt.tick > 3300)
            p2_max = std::max(p2_max, pt.value);
    }
    EXPECT_GT(p1_max, 60.0) << "phase 1 exploits the loose goal";
    EXPECT_LE(p1_max, 102.0);
    EXPECT_LE(p2_max, 52.0) << "phase 2 honours the tightened goal";
}

TEST(BehaviourHd4995, LimitScalesWithTheGoal)
{
    // The transducer maps hold-ticks to a file count at 20000
    // files/tick; when the goal halves, the limit should roughly halve.
    const auto s = makeScenario("HD4995");
    const ScenarioResult r = s->run(Policy::smart(), kSeed);
    const double before = meanBetween(r.conf_series, 1500, 3000);
    const double after = meanBetween(r.conf_series, 4500, 6000);
    EXPECT_LT(after, before * 0.75);
    EXPECT_GT(after, before * 0.25);
}

TEST(BehaviourMr2820, GateRisesForTheFatTaskPhase)
{
    // Phase 2's 128 MB spills need a higher admission gate than
    // phase 1's 64 MB spills; the controller discovers that by itself.
    const auto s = makeScenario("MR2820");
    const ScenarioResult r = s->run(Policy::smart(), kSeed);
    ASSERT_FALSE(r.violated);
    // Find the phase boundary: the completed-task counter plateaus at
    // 10 (phase-1 job size).
    sim::Tick boundary = 0;
    for (const auto &pt : r.tradeoff_series.points()) {
        if (pt.value >= 10.0) {
            boundary = pt.tick;
            break;
        }
    }
    ASSERT_GT(boundary, 0);
    const double p1 = meanBetween(r.conf_series, boundary / 2, boundary);
    const double p2 = meanBetween(r.conf_series, boundary + 20,
                                  boundary + 200);
    EXPECT_GT(p2, p1 + 30.0) << "gate " << p1 << " -> " << p2;
}

TEST(BehaviourAll, CrashedRunsEndTheirSeriesEarly)
{
    const auto s = makeScenario("HB3813");
    const ScenarioResult r =
        s->run(Policy::makeStatic(1000.0, "Buggy"), kSeed);
    ASSERT_TRUE(r.violated);
    const sim::Tick last = r.perf_series.points().back().tick;
    EXPECT_LT(last, 7000) << "a dead server records nothing further";
    EXPECT_NEAR(static_cast<double>(last) / 10.0, r.violation_time_s,
                1.0);
}

} // namespace
} // namespace smartconf::scenarios
