/**
 * @file Long-horizon stability: the controller must neither violate
 * the constraint nor drift away over runs an order of magnitude longer
 * than the evaluation window (paper Sec. 5.6's stability claim,
 * exercised empirically).
 */

#include <gtest/gtest.h>

#include "scenarios/hb3813.h"

namespace smartconf::scenarios {
namespace {

TEST(LongRun, HourOfSimulatedTimeStaysStable)
{
    Hb3813Options opts;
    opts.total_ticks = 36000; // one simulated hour
    Hb3813Scenario scenario(opts);
    const ScenarioResult r = scenario.run(Policy::smart(), 5);

    EXPECT_FALSE(r.violated);
    EXPECT_LE(r.worst_goal_metric, 495.0);

    // No drift: the bound in the final ten minutes behaves like the
    // bound shortly after the phase-2 shift (same workload regime).
    auto mean_between = [&r](sim::Tick lo, sim::Tick hi) {
        double acc = 0.0;
        int n = 0;
        for (const auto &pt : r.conf_series.points()) {
            if (pt.tick >= lo && pt.tick < hi) {
                acc += pt.value;
                ++n;
            }
        }
        return acc / std::max(1, n);
    };
    const double early = mean_between(4000, 10000);
    const double late = mean_between(30000, 36000);
    EXPECT_NEAR(late, early, early * 0.35)
        << "bound drifted from " << early << " to " << late;

    // Throughput holds up across the whole hour.
    EXPECT_GT(r.raw_tradeoff, 80.0);
}

} // namespace
} // namespace smartconf::scenarios
