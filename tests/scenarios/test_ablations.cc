/**
 * @file Controller-design ablations (paper Sec. 6.4, Fig. 7).
 *
 * The Fig. 7 experiment recreates HB3813 with a less stable 0.7W/0.3R
 * mix, a sustained backlog, and an abrupt 150 MB co-resident
 * allocation at 90 s.  SmartConf (virtual goal + context-aware poles)
 * must absorb it; the single-pole strawman survives only by being so
 * conservative it sacrifices throughput (paper Sec. 5.2); the
 * no-virtual-goal controller has no headroom and crashes.
 */

#include <gtest/gtest.h>

#include "scenarios/hb3813.h"

namespace smartconf::scenarios {
namespace {

constexpr std::uint64_t kSeed = 1;

Hb3813Options
fig7Options()
{
    Hb3813Options o;
    o.write_fraction = 0.7;
    o.arrival_base = 16.0;
    o.arrival_amp = 3.0;
    o.arrival_amp2 = 1.0;
    o.phase1_ticks = 1800;
    o.total_ticks = 1800;
    o.spike_mb = 150.0;
    o.spike_at = 900;
    o.spike_ramp = 30;
    return o;
}

TEST(Ablations, SmartConfAbsorbsTheAllocationBurst)
{
    Hb3813Scenario s(fig7Options());
    const ScenarioResult r = s.run(Policy::smart(), kSeed);
    EXPECT_FALSE(r.violated);
    EXPECT_LE(r.worst_goal_metric, r.goal_value);
}

TEST(Ablations, NoVirtualGoalCrashes)
{
    Hb3813Scenario s(fig7Options());
    const ScenarioResult r = s.run(Policy::noVirtualGoal(), kSeed);
    EXPECT_TRUE(r.violated)
        << "targeting the raw constraint leaves no headroom";
    // The crash comes early: either the initial ramp overshoots the
    // raw limit or the co-resident allocation finishes the job (the
    // paper reports a JVM crash at ~36 s).
    EXPECT_GE(r.violation_time_s, 0.0);
    EXPECT_LE(r.violation_time_s, 120.0);
}

TEST(Ablations, NoVirtualGoalRidesTheLimit)
{
    Hb3813Scenario s(fig7Options());
    const ScenarioResult base = s.run(Policy::smart(), kSeed);
    const ScenarioResult ablated = s.run(Policy::noVirtualGoal(), kSeed);
    EXPECT_GT(ablated.worst_goal_metric, base.worst_goal_metric);
}

TEST(Ablations, SinglePoleSacrificesThroughput)
{
    // Paper Sec. 5.2 (strawman): "an extremely insensitive pole ...
    // introduces an extremely long convergence process, which
    // sacrifices other aspects of performance".  With one conservative
    // pole the controller is slow to re-open the queue after every
    // disturbance; SmartConf's context-aware poles recover instantly.
    Hb3813Scenario s(fig7Options());
    const ScenarioResult smart = s.run(Policy::smart(), kSeed);
    const ScenarioResult single = s.run(Policy::singlePole(0.9), kSeed);
    EXPECT_FALSE(smart.violated);
    EXPECT_GT(smart.tradeoff, single.tradeoff * 1.15)
        << "smart " << smart.tradeoff << " vs single "
        << single.tradeoff;
}

TEST(Ablations, AblationsHoldAcrossSeeds)
{
    Hb3813Scenario s(fig7Options());
    int novg_crashes = 0;
    int single_slower = 0;
    for (std::uint64_t seed : {1u, 5u, 7u}) {
        const ScenarioResult smart = s.run(Policy::smart(), seed);
        EXPECT_FALSE(smart.violated) << "seed " << seed;
        novg_crashes +=
            s.run(Policy::noVirtualGoal(), seed).violated ? 1 : 0;
        single_slower +=
            smart.tradeoff >
                    s.run(Policy::singlePole(0.9), seed).tradeoff
                ? 1
                : 0;
    }
    EXPECT_GE(novg_crashes, 2);
    EXPECT_EQ(single_slower, 3);
}

} // namespace
} // namespace smartconf::scenarios
