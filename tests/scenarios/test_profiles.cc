/** @file Profiling sanity for every scenario (Sec. 5.5 recipe). */

#include <gtest/gtest.h>

#include "scenarios/scenario.h"

namespace smartconf::scenarios {
namespace {

class ProfileSweep : public ::testing::TestWithParam<const char *>
{};

TEST_P(ProfileSweep, SynthesisIsSane)
{
    const auto scenario = makeScenario(GetParam());
    ASSERT_NE(scenario, nullptr);
    const ProfileSummary s = scenario->profile(1234);

    EXPECT_EQ(s.settings, 4u) << "4 profiled settings (Sec. 6.1)";
    EXPECT_GE(s.samples, 40u) << "10 samples per setting";
    EXPECT_NE(s.alpha, 0.0);
    EXPECT_TRUE(s.monotonic)
        << "case-study relationships are monotonic (Sec. 6.6)";
    EXPECT_GE(s.lambda, 0.0);
    EXPECT_LE(s.lambda, 0.9);
    EXPECT_GE(s.delta, 1.0);
    EXPECT_GE(s.pole, 0.0);
    EXPECT_LT(s.pole, 1.0);
}

TEST_P(ProfileSweep, DeterministicForSameSeed)
{
    const auto scenario = makeScenario(GetParam());
    const ProfileSummary a = scenario->profile(77);
    const ProfileSummary b = scenario->profile(77);
    EXPECT_DOUBLE_EQ(a.alpha, b.alpha);
    EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
    EXPECT_DOUBLE_EQ(a.pole, b.pole);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ProfileSweep,
                         ::testing::Values("CA6059", "HB2149", "HB3813",
                                           "HB6728", "HD4995",
                                           "MR2820"));

TEST(ProfileSigns, GainSignsMatchTheMechanism)
{
    // Memory/latency cases have positive gains; MR2820's disk gate has
    // a negative gain (raising it lowers disk usage).
    EXPECT_GT(makeScenario("HB3813")->profile(5).alpha, 0.0);
    EXPECT_GT(makeScenario("HB2149")->profile(5).alpha, 0.0);
    EXPECT_GT(makeScenario("HD4995")->profile(5).alpha, 0.0);
    EXPECT_LT(makeScenario("MR2820")->profile(5).alpha, 0.0);
}

} // namespace
} // namespace smartconf::scenarios
