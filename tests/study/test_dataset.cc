/** @file Tests that the study dataset matches every published count. */

#include <gtest/gtest.h>

#include <set>

#include "study/dataset.h"

namespace smartconf::study {
namespace {

const StudyDataset &
ds()
{
    static const StudyDataset d = StudyDataset::paper();
    return d;
}

TEST(Dataset, Table2PopulationsMatchPaper)
{
    // Table 2: PerfConf/AllConf issues and posts per system.
    const struct
    {
        System sys;
        int issues, posts, all_issues, all_posts;
    } rows[] = {
        {System::Cassandra, 20, 20, 32, 60},
        {System::HBase, 30, 7, 48, 33},
        {System::Hdfs, 20, 7, 31, 39},
        {System::MapReduce, 10, 20, 13, 25},
    };
    for (const auto &row : rows) {
        const SuiteCounts c = ds().suiteCounts(row.sys);
        EXPECT_EQ(c.perfconf_issues, row.issues)
            << systemFullName(row.sys);
        EXPECT_EQ(c.perfconf_posts, row.posts);
        EXPECT_EQ(c.allconf_issues, row.all_issues);
        EXPECT_EQ(c.allconf_posts, row.all_posts);
    }
}

TEST(Dataset, Totals)
{
    EXPECT_EQ(ds().issues().size(), 80u);
    EXPECT_EQ(ds().posts().size(), 54u);
}

TEST(Dataset, IssueIdsUniqueAndSystemTagged)
{
    std::set<std::string> ids;
    for (const auto &issue : ds().issues()) {
        EXPECT_TRUE(ids.insert(issue.id).second)
            << "duplicate id " << issue.id;
        EXPECT_EQ(issue.id.substr(0, 2),
                  std::string(systemShortName(issue.sys)));
    }
}

TEST(Dataset, EveryIssueAffectsAtLeastOneMetric)
{
    for (const auto &issue : ds().issues())
        EXPECT_GE(issue.coarseMetricCount(), 1) << issue.id;
}

TEST(Dataset, MultiMetricCountMatchesPaper)
{
    int multi = 0;
    for (const auto &issue : ds().issues())
        multi += issue.multi_metric ? 1 : 0;
    EXPECT_EQ(multi, 61); // "61 out of 80"
}

TEST(Dataset, CoarseMultiImpliesMultiFlag)
{
    for (const auto &issue : ds().issues()) {
        if (issue.coarseMetricCount() >= 2)
            EXPECT_TRUE(issue.multi_metric) << issue.id;
    }
}

TEST(Dataset, FunctionalityTradeoffsMatchPaper)
{
    int n = 0;
    for (const auto &issue : ds().issues())
        n += issue.func_tradeoff ? 1 : 0;
    EXPECT_EQ(n, 13);
}

TEST(Dataset, AboutHalfThreatenHardConstraints)
{
    int n = 0;
    for (const auto &issue : ds().issues())
        n += issue.threatens_hard ? 1 : 0;
    // "about half of PerfConfs threaten hard performance constraints".
    EXPECT_GE(n, 35);
    EXPECT_LE(n, 45);
}

TEST(Dataset, PostSharesMatchSection221)
{
    int howto = 0, specific = 0, oom = 0;
    for (const auto &post : ds().posts()) {
        howto += post.type == PostType::HowToSet ? 1 : 0;
        specific += post.asks_specific_conf ? 1 : 0;
        oom += post.mentions_oom ? 1 : 0;
    }
    const double n = static_cast<double>(ds().posts().size());
    EXPECT_NEAR(howto / n, 0.40, 0.05);   // "about 40%"
    EXPECT_NEAR(specific / n, 0.50, 0.05); // "about half"
    EXPECT_NEAR(oom / n, 0.30, 0.05);      // "~30%"
}

TEST(Dataset, SystemHelpers)
{
    EXPECT_STREQ(systemShortName(System::Cassandra), "CA");
    EXPECT_STREQ(systemFullName(System::MapReduce), "MapReduce");
    EXPECT_EQ(kSystems.size(), 4u);
}

TEST(Dataset, DeterministicConstruction)
{
    const StudyDataset a = StudyDataset::paper();
    const StudyDataset b = StudyDataset::paper();
    ASSERT_EQ(a.issues().size(), b.issues().size());
    for (std::size_t i = 0; i < a.issues().size(); ++i) {
        EXPECT_EQ(a.issues()[i].id, b.issues()[i].id);
        EXPECT_EQ(a.issues()[i].multi_metric,
                  b.issues()[i].multi_metric);
    }
}

} // namespace
} // namespace smartconf::study
