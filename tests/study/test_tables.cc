/** @file Tests that each rendered table cell matches the paper. */

#include <gtest/gtest.h>

#include "study/tables.h"

namespace smartconf::study {
namespace {

const StudyDataset &
ds()
{
    static const StudyDataset d = StudyDataset::paper();
    return d;
}

TEST(Table3, AllCellsMatchPaper)
{
    const struct
    {
        System sys;
        Table3Counts expect;
    } rows[] = {
        {System::Cassandra, {11, 2, 2, 5}},
        {System::HBase, {16, 1, 0, 13}},
        {System::Hdfs, {8, 7, 0, 5}},
        {System::MapReduce, {4, 4, 1, 1}},
    };
    for (const auto &row : rows) {
        const Table3Counts c = aggregateTable3(ds(), row.sys);
        EXPECT_EQ(c.tune_new, row.expect.tune_new)
            << systemFullName(row.sys);
        EXPECT_EQ(c.replace_hard_coded, row.expect.replace_hard_coded);
        EXPECT_EQ(c.refine_existing, row.expect.refine_existing);
        EXPECT_EQ(c.fix_poor_default, row.expect.fix_poor_default);
        EXPECT_EQ(c.total(),
                  ds().suiteCounts(row.sys).perfconf_issues);
    }
}

TEST(Table3, HalfFixDefaultsOrHardCoded)
{
    // "For about half of the issues, either the default (24 of 80) or
    // the original hard-coded (14 of 80) setting caused severe
    // performance issues."
    int fix = 0, hard_coded = 0;
    for (const System sys : kSystems) {
        const Table3Counts c = aggregateTable3(ds(), sys);
        fix += c.fix_poor_default;
        hard_coded += c.replace_hard_coded;
    }
    EXPECT_EQ(fix, 24);
    EXPECT_EQ(hard_coded, 14);
}

TEST(Table4, AllCellsMatchPaper)
{
    const struct
    {
        System sys;
        Table4Counts expect;
    } rows[] = {
        {System::Cassandra, {14, 8, 9, 9, 11, 7, 13}},
        {System::HBase, {28, 3, 15, 17, 13, 16, 14}},
        {System::Hdfs, {20, 5, 8, 8, 12, 8, 12}},
        {System::MapReduce, {9, 0, 7, 6, 4, 4, 6}},
    };
    for (const auto &row : rows) {
        const Table4Counts c = aggregateTable4(ds(), row.sys);
        EXPECT_EQ(c.latency, row.expect.latency)
            << systemFullName(row.sys);
        EXPECT_EQ(c.throughput, row.expect.throughput);
        EXPECT_EQ(c.memdisk, row.expect.memdisk);
        EXPECT_EQ(c.always_on, row.expect.always_on);
        EXPECT_EQ(c.conditional, row.expect.conditional);
        EXPECT_EQ(c.direct, row.expect.direct);
        EXPECT_EQ(c.indirect, row.expect.indirect);
    }
}

TEST(Table5, AllCellsMatchPaper)
{
    const struct
    {
        System sys;
        Table5Counts expect;
    } rows[] = {
        {System::Cassandra, {15, 4, 1, 0, 4, 16}},
        {System::HBase, {23, 5, 2, 1, 0, 29}},
        {System::Hdfs, {19, 0, 1, 0, 0, 20}},
        {System::MapReduce, {9, 0, 1, 1, 2, 7}},
    };
    for (const auto &row : rows) {
        const Table5Counts c = aggregateTable5(ds(), row.sys);
        EXPECT_EQ(c.integer, row.expect.integer)
            << systemFullName(row.sys);
        EXPECT_EQ(c.floating, row.expect.floating);
        EXPECT_EQ(c.non_numerical, row.expect.non_numerical);
        EXPECT_EQ(c.static_system, row.expect.static_system);
        EXPECT_EQ(c.static_workload, row.expect.static_workload);
        EXPECT_EQ(c.dynamic, row.expect.dynamic);
    }
}

TEST(Table5, DynamicFactorsDominate)
{
    // "In most cases (~90%), it depends on dynamic workload and
    // environment characteristics."
    int dynamic = 0;
    for (const System sys : kSystems)
        dynamic += aggregateTable5(ds(), sys).dynamic;
    EXPECT_NEAR(static_cast<double>(dynamic) / 80.0, 0.9, 0.03);
}

TEST(Headlines, SharesMatchPaper)
{
    const HeadlineStats h = aggregateHeadlines(ds());
    EXPECT_EQ(h.issues, 80);
    EXPECT_EQ(h.posts, 54);
    EXPECT_NEAR(h.perfconf_issue_share, 0.65, 0.02); // "65% of issues"
    EXPECT_NEAR(h.perfconf_post_share, 0.35, 0.02);  // "35% of posts"
    EXPECT_EQ(h.multi_metric_issues, 61);
    EXPECT_EQ(h.func_tradeoff_issues, 13);
}

TEST(Rendering, TablesContainKeyNumbers)
{
    const std::string t2 = formatTable2(ds());
    EXPECT_NE(t2.find("Cassandra"), std::string::npos);
    EXPECT_NE(t2.find("Total"), std::string::npos);
    EXPECT_NE(t2.find("80"), std::string::npos);
    EXPECT_NE(t2.find("157"), std::string::npos);

    const std::string t4 = formatTable4(ds());
    EXPECT_NE(t4.find("User-Request Latency"), std::string::npos);
    EXPECT_NE(t4.find("Indirect Impact"), std::string::npos);

    const std::string t5 = formatTable5(ds());
    EXPECT_NE(t5.find("Floating Points"), std::string::npos);
    EXPECT_NE(t5.find("Dynamic factors"), std::string::npos);

    const std::string head = formatHeadlines(ds());
    EXPECT_NE(head.find("61 of 80"), std::string::npos);
}

} // namespace
} // namespace smartconf::study
