/**
 * @file
 * Persistent (cross-process) run cache: round-trip fidelity,
 * cross-instance warm start, versioning, and corruption tolerance.
 *
 * One DiskRunCache instance stands in for one process; a second
 * instance over the same root models a fresh process finding the
 * store already populated.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "exec/disk_cache.h"
#include "exec/run_cache.h"
#include "fault/cache_faults.h"
#include "scenarios/scenario.h"
#include "sim/metrics.h"

namespace smartconf::exec {
namespace {

namespace fs = std::filesystem;

class DiskRunCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root_ = (fs::temp_directory_path() /
                 ("smartconf-cache-test-" +
                  std::to_string(::testing::UnitTest::GetInstance()
                                     ->random_seed()) +
                  "-" + test_name()))
                    .string();
        fs::remove_all(root_);
    }
    void TearDown() override { fs::remove_all(root_); }

    static std::string test_name()
    {
        return ::testing::UnitTest::GetInstance()
            ->current_test_info()
            ->name();
    }

    static scenarios::ScenarioResult sampleResult()
    {
        scenarios::ScenarioResult r;
        r.scenario_id = "HB3813";
        r.policy_label = "SmartConf";
        r.violated = true;
        r.violation_time_s = 36.25;
        r.worst_goal_metric = 512.5;
        r.goal_value = 495.0;
        r.tradeoff = 1234.5;
        r.raw_tradeoff = 2345.75;
        r.mean_conf = 87.5;
        r.ops_simulated = 987654321;
        r.perf_series = sim::TimeSeries("used_memory_mb");
        r.conf_series = sim::TimeSeries("max.queue.size");
        r.tradeoff_series = sim::TimeSeries("completed_ops");
        for (int t = 0; t < 1000; ++t) {
            r.perf_series.record(t, 400.0 + 0.125 * t);
            r.conf_series.record(t, 100.0 - 0.01 * t);
            if (t % 10 == 0)
                r.tradeoff_series.record(t, 17.0 * t);
        }
        return r;
    }

    static void expectEqual(const scenarios::ScenarioResult &a,
                            const scenarios::ScenarioResult &b)
    {
        EXPECT_EQ(a.scenario_id, b.scenario_id);
        EXPECT_EQ(a.policy_label, b.policy_label);
        EXPECT_EQ(a.violated, b.violated);
        EXPECT_EQ(a.violation_time_s, b.violation_time_s);
        EXPECT_EQ(a.worst_goal_metric, b.worst_goal_metric);
        EXPECT_EQ(a.goal_value, b.goal_value);
        EXPECT_EQ(a.tradeoff, b.tradeoff);
        EXPECT_EQ(a.raw_tradeoff, b.raw_tradeoff);
        EXPECT_EQ(a.mean_conf, b.mean_conf);
        EXPECT_EQ(a.ops_simulated, b.ops_simulated);
        ASSERT_EQ(a.perf_series.size(), b.perf_series.size());
        EXPECT_EQ(a.perf_series.name(), b.perf_series.name());
        for (std::size_t i = 0; i < a.perf_series.size(); ++i) {
            EXPECT_EQ(a.perf_series.points()[i].tick,
                      b.perf_series.points()[i].tick);
            EXPECT_EQ(a.perf_series.points()[i].value,
                      b.perf_series.points()[i].value);
        }
        EXPECT_EQ(a.conf_series.size(), b.conf_series.size());
        EXPECT_EQ(a.tradeoff_series.size(), b.tradeoff_series.size());
    }

    std::string root_;
};

TEST_F(DiskRunCacheTest, RoundTripsEveryField)
{
    DiskRunCache cache(root_);
    const scenarios::ScenarioResult original = sampleResult();
    ASSERT_TRUE(cache.store("key-1", original));

    scenarios::ScenarioResult loaded;
    ASSERT_TRUE(cache.load("key-1", loaded));
    expectEqual(original, loaded);
}

TEST_F(DiskRunCacheTest, MissingKeyIsAMiss)
{
    DiskRunCache cache(root_);
    scenarios::ScenarioResult out;
    EXPECT_FALSE(cache.load("never-stored", out));
}

TEST_F(DiskRunCacheTest, SecondInstanceStartsWarm)
{
    // Process 1 stores; process 2 (a fresh instance over the same
    // root) must load without any shared in-memory state.
    {
        DiskRunCache writer(root_);
        ASSERT_TRUE(writer.store("shared-key", sampleResult()));
    }
    DiskRunCache reader(root_);
    scenarios::ScenarioResult out;
    ASSERT_TRUE(reader.load("shared-key", out));
    EXPECT_EQ(out.scenario_id, "HB3813");
    EXPECT_EQ(out.ops_simulated, 987654321u);
}

TEST_F(DiskRunCacheTest, FullKeyMismatchIsAMiss)
{
    // Two keys engineered into the same file would be a silent wrong
    // answer if only the hash were compared; the stored full key must
    // be validated.  Simulate by renaming an entry to another key's
    // slot.
    DiskRunCache cache(root_);
    ASSERT_TRUE(cache.store("key-a", sampleResult()));
    const std::string src = cache.dir() + "/";
    fs::path stored;
    for (const auto &e : fs::directory_iterator(cache.dir()))
        stored = e.path();
    // Move the payload under the filename key-b hashes to.
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(
                      DiskRunCache::fnv1a("key-b")));
    fs::rename(stored, fs::path(cache.dir()) / (std::string(hex) + ".bin"));

    scenarios::ScenarioResult out;
    EXPECT_FALSE(cache.load("key-b", out)) << "foreign payload accepted";
}

TEST_F(DiskRunCacheTest, TruncatedFileIsAMiss)
{
    DiskRunCache cache(root_);
    ASSERT_TRUE(cache.store("key-t", sampleResult()));
    fs::path stored;
    for (const auto &e : fs::directory_iterator(cache.dir()))
        stored = e.path();
    fs::resize_file(stored, fs::file_size(stored) / 2);

    scenarios::ScenarioResult out;
    EXPECT_FALSE(cache.load("key-t", out)) << "torn file accepted";
}

TEST_F(DiskRunCacheTest, VersionBumpInvalidatesByConstruction)
{
    // Entries live under a directory named for (format, engine)
    // versions, so a version bump reads from a different directory —
    // stale entries can never be loaded by a newer binary.
    DiskRunCache cache(root_);
    const std::string dir = cache.dir();
    EXPECT_NE(dir.find("/v"), std::string::npos);
    EXPECT_NE(dir.find("-e"), std::string::npos);
    ASSERT_TRUE(cache.store("k", sampleResult()));
    EXPECT_TRUE(fs::exists(dir));
}

TEST_F(DiskRunCacheTest, RunCacheSpillsAndReloadsAcrossInstances)
{
    int simulations = 0;
    const auto simulate = [&] {
        ++simulations;
        return sampleResult();
    };

    {
        RunCache first;
        first.attachDiskCache(root_);
        (void)first.getOrRun("job-key", simulate);
        EXPECT_EQ(simulations, 1);
        EXPECT_EQ(first.stats().disk_stores, 1u);
    }

    RunCache second; // fresh "process"
    second.attachDiskCache(root_);
    const scenarios::ScenarioResult replay =
        second.getOrRun("job-key", simulate);
    EXPECT_EQ(simulations, 1) << "second process re-simulated";
    EXPECT_EQ(second.stats().disk_hits, 1u);
    expectEqual(sampleResult(), replay);

    // In-memory hit on the second touch: disk is not re-read.
    (void)second.getOrRun("job-key", simulate);
    EXPECT_EQ(second.stats().disk_hits, 1u);
    EXPECT_EQ(second.stats().hits, 1u);
}

// --- Fault-path coverage (injected via fault/cache_faults.h) -----------
//
// The cache's two promises under corruption:
//   1. any damaged entry degrades to a MISS, never a wrong series;
//   2. an unusable cache directory degrades to CACHE-OFF, never an
//      aborted sweep.

TEST_F(DiskRunCacheTest, BlockedRootDegradesToCacheOff)
{
    // A regular file where the root directory should be defeats
    // create_directories for every uid (unlike chmod, which root — the
    // usual CI user — bypasses).
    ASSERT_TRUE(fault::blockPathWithFile(root_));
    DiskRunCache cache(root_);
    EXPECT_FALSE(cache.store("k", sampleResult()))
        << "store into a blocked root must fail, not abort";
    scenarios::ScenarioResult out;
    EXPECT_FALSE(cache.load("k", out));
}

TEST_F(DiskRunCacheTest, SweepSurvivesBlockedRootAsCacheOff)
{
    ASSERT_TRUE(fault::blockPathWithFile(root_));
    RunCache cache;
    cache.attachDiskCache(root_);
    int simulations = 0;
    const auto simulate = [&] {
        ++simulations;
        return sampleResult();
    };
    const scenarios::ScenarioResult r = cache.getOrRun("k", simulate);
    EXPECT_EQ(simulations, 1) << "the run itself must still happen";
    EXPECT_EQ(r.scenario_id, "HB3813");
    EXPECT_EQ(cache.stats().disk_stores, 0u);
    // The in-memory layer still works: no disk, no re-simulation.
    (void)cache.getOrRun("k", simulate);
    EXPECT_EQ(simulations, 1);
}

TEST_F(DiskRunCacheTest, RenameTargetBlockedDegradesToStoreFailure)
{
    DiskRunCache cache(root_);
    // Occupy the exact entry path with a directory: the tmp+rename
    // commit cannot replace it, so store must report failure cleanly.
    ASSERT_TRUE(cache.store("probe", sampleResult())); // creates dir()
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(
                      DiskRunCache::fnv1a("victim-key")));
    const fs::path entry =
        fs::path(cache.dir()) / (std::string(hex) + ".bin");
    fs::create_directories(entry / "occupied");
    EXPECT_FALSE(cache.store("victim-key", sampleResult()));
    scenarios::ScenarioResult out;
    EXPECT_FALSE(cache.load("victim-key", out));
    // Unrelated keys are unaffected.
    ASSERT_TRUE(cache.load("probe", out));
}

TEST_F(DiskRunCacheTest, TruncationAtEveryRegionIsAMiss)
{
    DiskRunCache cache(root_);
    ASSERT_TRUE(cache.store("key-t", sampleResult()));
    const std::vector<std::string> files =
        fault::listEntryFiles(cache.dir());
    ASSERT_EQ(files.size(), 1u);
    const std::int64_t size = fault::fileSize(files[0]);
    ASSERT_GT(size, 0);

    // Cut inside the magic, the header, the key, the checksum, and the
    // payload — every region must degrade to a miss.
    const std::vector<std::uint64_t> cuts = {
        0, 2, 8, 16, 40,
        static_cast<std::uint64_t>(size / 4),
        static_cast<std::uint64_t>(size / 2),
        static_cast<std::uint64_t>(size - 1),
    };
    for (const std::uint64_t keep : cuts) {
        ASSERT_TRUE(cache.store("key-t", sampleResult())); // restore
        ASSERT_TRUE(fault::truncateFile(files[0], keep));
        scenarios::ScenarioResult out;
        EXPECT_FALSE(cache.load("key-t", out))
            << "entry truncated to " << keep << " bytes accepted";
    }
}

TEST_F(DiskRunCacheTest, BitFlipAnywhereIsAMissNeverAWrongSeries)
{
    // Payload doubles are all "valid" bit patterns, so without the
    // payload checksum a flipped series byte would parse fine and
    // replay a silently wrong curve.  Sample flips across the whole
    // file — header, key, checksum, scalars, series — and demand a
    // miss every time.
    DiskRunCache cache(root_);
    ASSERT_TRUE(cache.store("key-f", sampleResult()));
    const std::vector<std::string> files =
        fault::listEntryFiles(cache.dir());
    ASSERT_EQ(files.size(), 1u);
    const std::int64_t size = fault::fileSize(files[0]);
    ASSERT_GT(size, 0);

    int flips = 0;
    for (std::int64_t off = 0; off < size; off += 97, ++flips) {
        const unsigned bit = static_cast<unsigned>(off % 8);
        ASSERT_TRUE(fault::flipBit(files[0],
                                   static_cast<std::uint64_t>(off), bit));
        scenarios::ScenarioResult out;
        EXPECT_FALSE(cache.load("key-f", out))
            << "flip at byte " << off << " bit " << bit << " accepted";
        // Undo the flip so each iteration tests exactly one bad bit.
        ASSERT_TRUE(fault::flipBit(files[0],
                                   static_cast<std::uint64_t>(off), bit));
    }
    EXPECT_GT(flips, 100) << "sampling did not cover the file";

    // With every flip undone the entry is intact again: bit-exact.
    scenarios::ScenarioResult restored;
    ASSERT_TRUE(cache.load("key-f", restored));
    expectEqual(sampleResult(), restored);
}

TEST_F(DiskRunCacheTest, FaultsInjectedFieldRoundTrips)
{
    DiskRunCache cache(root_);
    scenarios::ScenarioResult r = sampleResult();
    r.faults_injected = 424242;
    ASSERT_TRUE(cache.store("key-chaos", r));
    scenarios::ScenarioResult out;
    ASSERT_TRUE(cache.load("key-chaos", out));
    EXPECT_EQ(out.faults_injected, 424242u);
}

TEST_F(DiskRunCacheTest, DetachStopsSpilling)
{
    RunCache cache;
    cache.attachDiskCache(root_);
    cache.attachDiskCache("");
    (void)cache.getOrRun("k", [] {
        return scenarios::ScenarioResult{};
    });
    EXPECT_EQ(cache.stats().disk_stores, 0u);
    EXPECT_FALSE(fs::exists(root_));
}

} // namespace
} // namespace smartconf::exec
