/**
 * @file
 * Persistent (cross-process) run cache: round-trip fidelity,
 * cross-instance warm start, versioning, and corruption tolerance.
 *
 * One DiskRunCache instance stands in for one process; a second
 * instance over the same root models a fresh process finding the
 * store already populated.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "exec/disk_cache.h"
#include "exec/run_cache.h"
#include "fault/cache_faults.h"
#include "scenarios/scenario.h"
#include "sim/metrics.h"

namespace smartconf::exec {
namespace {

namespace fs = std::filesystem;

class DiskRunCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root_ = (fs::temp_directory_path() /
                 ("smartconf-cache-test-" +
                  std::to_string(::testing::UnitTest::GetInstance()
                                     ->random_seed()) +
                  "-" + test_name()))
                    .string();
        fs::remove_all(root_);
    }
    void TearDown() override { fs::remove_all(root_); }

    static std::string test_name()
    {
        return ::testing::UnitTest::GetInstance()
            ->current_test_info()
            ->name();
    }

    /** Store options for throwaway reader instances: no compactor
     *  thread, so hundreds of fresh instances stay cheap. */
    static store::SegmentStore::Options quietOpts()
    {
        store::SegmentStore::Options o;
        o.auto_compact = false;
        return o;
    }

    static scenarios::ScenarioResult sampleResult()
    {
        scenarios::ScenarioResult r;
        r.scenario_id = "HB3813";
        r.policy_label = "SmartConf";
        r.violated = true;
        r.violation_time_s = 36.25;
        r.worst_goal_metric = 512.5;
        r.goal_value = 495.0;
        r.tradeoff = 1234.5;
        r.raw_tradeoff = 2345.75;
        r.mean_conf = 87.5;
        r.ops_simulated = 987654321;
        r.perf_series = sim::TimeSeries("used_memory_mb");
        r.conf_series = sim::TimeSeries("max.queue.size");
        r.tradeoff_series = sim::TimeSeries("completed_ops");
        for (int t = 0; t < 1000; ++t) {
            r.perf_series.record(t, 400.0 + 0.125 * t);
            r.conf_series.record(t, 100.0 - 0.01 * t);
            if (t % 10 == 0)
                r.tradeoff_series.record(t, 17.0 * t);
        }
        return r;
    }

    static void expectEqual(const scenarios::ScenarioResult &a,
                            const scenarios::ScenarioResult &b)
    {
        EXPECT_EQ(a.scenario_id, b.scenario_id);
        EXPECT_EQ(a.policy_label, b.policy_label);
        EXPECT_EQ(a.violated, b.violated);
        EXPECT_EQ(a.violation_time_s, b.violation_time_s);
        EXPECT_EQ(a.worst_goal_metric, b.worst_goal_metric);
        EXPECT_EQ(a.goal_value, b.goal_value);
        EXPECT_EQ(a.tradeoff, b.tradeoff);
        EXPECT_EQ(a.raw_tradeoff, b.raw_tradeoff);
        EXPECT_EQ(a.mean_conf, b.mean_conf);
        EXPECT_EQ(a.ops_simulated, b.ops_simulated);
        ASSERT_EQ(a.perf_series.size(), b.perf_series.size());
        EXPECT_EQ(a.perf_series.name(), b.perf_series.name());
        for (std::size_t i = 0; i < a.perf_series.size(); ++i) {
            EXPECT_EQ(a.perf_series.points()[i].tick,
                      b.perf_series.points()[i].tick);
            EXPECT_EQ(a.perf_series.points()[i].value,
                      b.perf_series.points()[i].value);
        }
        EXPECT_EQ(a.conf_series.size(), b.conf_series.size());
        EXPECT_EQ(a.tradeoff_series.size(), b.tradeoff_series.size());
    }

    std::string root_;
};

TEST_F(DiskRunCacheTest, RoundTripsEveryField)
{
    DiskRunCache cache(root_);
    const scenarios::ScenarioResult original = sampleResult();
    ASSERT_TRUE(cache.store("key-1", original));

    scenarios::ScenarioResult loaded;
    ASSERT_TRUE(cache.load("key-1", loaded));
    expectEqual(original, loaded);
}

TEST_F(DiskRunCacheTest, MissingKeyIsAMiss)
{
    DiskRunCache cache(root_);
    scenarios::ScenarioResult out;
    EXPECT_FALSE(cache.load("never-stored", out));
}

TEST_F(DiskRunCacheTest, SecondInstanceStartsWarm)
{
    // Process 1 stores; process 2 (a fresh instance over the same
    // root) must load without any shared in-memory state.
    {
        DiskRunCache writer(root_);
        ASSERT_TRUE(writer.store("shared-key", sampleResult()));
    }
    DiskRunCache reader(root_);
    scenarios::ScenarioResult out;
    ASSERT_TRUE(reader.load("shared-key", out));
    EXPECT_EQ(out.scenario_id, "HB3813");
    EXPECT_EQ(out.ops_simulated, 987654321u);
}

TEST_F(DiskRunCacheTest, FullKeyMismatchIsAMiss)
{
    // The store compares the stored full key, not just its hash: a key
    // that was never stored must miss even when entries from the same
    // shard exist.  (The forged-hash-collision case, where the index
    // *claims* the victim's hash, lives in the SegmentStore tests —
    // the forgery needs format-level surgery.)
    DiskRunCache cache(root_);
    ASSERT_TRUE(cache.store("key-a", sampleResult()));
    ASSERT_TRUE(cache.flush());
    scenarios::ScenarioResult out;
    EXPECT_FALSE(cache.load("key-b", out));
    DiskRunCache fresh(root_, quietOpts());
    EXPECT_FALSE(fresh.load("key-b", out));
    EXPECT_TRUE(fresh.load("key-a", out));
}

TEST_F(DiskRunCacheTest, TruncatedFileIsAMiss)
{
    {
        DiskRunCache cache(root_, quietOpts());
        ASSERT_TRUE(cache.store("key-t", sampleResult()));
        ASSERT_TRUE(cache.flush());
    }
    const std::vector<std::string> segs =
        fault::listSegmentFiles(DiskRunCache::versionDir(root_));
    ASSERT_EQ(segs.size(), 1u);
    fs::resize_file(segs[0], fs::file_size(segs[0]) / 2);

    DiskRunCache reader(root_, quietOpts());
    scenarios::ScenarioResult out;
    EXPECT_FALSE(reader.load("key-t", out)) << "torn segment accepted";
}

TEST_F(DiskRunCacheTest, VersionBumpInvalidatesByConstruction)
{
    // Entries live under a directory named for (format, engine)
    // versions, so a version bump reads from a different directory —
    // stale entries can never be loaded by a newer binary.
    DiskRunCache cache(root_);
    const std::string dir = cache.dir();
    EXPECT_NE(dir.find("/v"), std::string::npos);
    EXPECT_NE(dir.find("-e"), std::string::npos);
    ASSERT_TRUE(cache.store("k", sampleResult()));
    EXPECT_TRUE(fs::exists(dir));
}

TEST_F(DiskRunCacheTest, RunCacheSpillsAndReloadsAcrossInstances)
{
    int simulations = 0;
    const auto simulate = [&] {
        ++simulations;
        return sampleResult();
    };

    {
        RunCache first;
        first.attachDiskCache(root_);
        (void)first.getOrRun("job-key", simulate);
        EXPECT_EQ(simulations, 1);
        EXPECT_EQ(first.stats().disk_stores, 1u);
    }

    RunCache second; // fresh "process"
    second.attachDiskCache(root_);
    const scenarios::ScenarioResult replay =
        second.getOrRun("job-key", simulate);
    EXPECT_EQ(simulations, 1) << "second process re-simulated";
    EXPECT_EQ(second.stats().disk_hits, 1u);
    expectEqual(sampleResult(), replay);

    // In-memory hit on the second touch: disk is not re-read.
    (void)second.getOrRun("job-key", simulate);
    EXPECT_EQ(second.stats().disk_hits, 1u);
    EXPECT_EQ(second.stats().hits, 1u);
}

// --- Fault-path coverage (injected via fault/cache_faults.h) -----------
//
// The cache's two promises under corruption:
//   1. any damaged entry degrades to a MISS, never a wrong series;
//   2. an unusable cache directory degrades to CACHE-OFF, never an
//      aborted sweep.

TEST_F(DiskRunCacheTest, BlockedRootDegradesToCacheOff)
{
    // A regular file where the root directory should be defeats
    // create_directories for every uid (unlike chmod, which root — the
    // usual CI user — bypasses).
    ASSERT_TRUE(fault::blockPathWithFile(root_));
    DiskRunCache cache(root_);
    EXPECT_FALSE(cache.store("k", sampleResult()))
        << "store into a blocked root must fail, not abort";
    scenarios::ScenarioResult out;
    EXPECT_FALSE(cache.load("k", out));
}

TEST_F(DiskRunCacheTest, SweepSurvivesBlockedRootAsCacheOff)
{
    ASSERT_TRUE(fault::blockPathWithFile(root_));
    RunCache cache;
    cache.attachDiskCache(root_);
    int simulations = 0;
    const auto simulate = [&] {
        ++simulations;
        return sampleResult();
    };
    const scenarios::ScenarioResult r = cache.getOrRun("k", simulate);
    EXPECT_EQ(simulations, 1) << "the run itself must still happen";
    EXPECT_EQ(r.scenario_id, "HB3813");
    EXPECT_EQ(cache.stats().disk_stores, 0u);
    // The in-memory layer still works: no disk, no re-simulation.
    (void)cache.getOrRun("k", simulate);
    EXPECT_EQ(simulations, 1);
}

TEST_F(DiskRunCacheTest, PublishTargetOccupiedIsRetriedNotFatal)
{
    // Occupy the first segment name this process would claim with a
    // directory: the claim loop must skip it and publish under the
    // next sequence number instead of failing the store.
    DiskRunCache cache(root_, quietOpts());
    const std::uint32_t shard =
        cache.segmentStore().shardOf("victim-key");
    char name[64];
    std::snprintf(name, sizeof name, "seg-%02x-%016llx-%lx.seg", shard,
                  1ULL, static_cast<unsigned long>(::getpid()));
    fs::create_directories(fs::path(cache.dir()) / name / "occupied");

    ASSERT_TRUE(cache.store("victim-key", sampleResult()));
    ASSERT_TRUE(cache.flush());
    DiskRunCache reader(root_, quietOpts());
    scenarios::ScenarioResult out;
    EXPECT_TRUE(reader.load("victim-key", out));
}

TEST_F(DiskRunCacheTest, TruncationAtEveryRegionIsAMiss)
{
    {
        DiskRunCache cache(root_, quietOpts());
        ASSERT_TRUE(cache.store("key-t", sampleResult()));
        ASSERT_TRUE(cache.flush());
    }
    const std::vector<std::string> segs =
        fault::listSegmentFiles(DiskRunCache::versionDir(root_));
    ASSERT_EQ(segs.size(), 1u);
    const std::int64_t size = fault::fileSize(segs[0]);
    ASSERT_GT(size, 0);
    const std::string pristine = segs[0] + ".pristine";
    fs::copy_file(segs[0], pristine);

    // Cut inside the header, the record region (key + payload), and
    // the index block — every region must degrade to a miss for a
    // fresh process.
    const std::vector<std::uint64_t> cuts = {
        0, 2, 8, 40, 63, 64, 100,
        static_cast<std::uint64_t>(size / 4),
        static_cast<std::uint64_t>(size / 2),
        static_cast<std::uint64_t>(size - 1),
    };
    for (const std::uint64_t keep : cuts) {
        fs::copy_file(pristine, segs[0],
                      fs::copy_options::overwrite_existing);
        ASSERT_TRUE(fault::truncateFile(segs[0], keep));
        DiskRunCache reader(root_, quietOpts());
        scenarios::ScenarioResult out;
        EXPECT_FALSE(reader.load("key-t", out))
            << "segment truncated to " << keep << " bytes accepted";
    }
    fs::remove(pristine);
}

TEST_F(DiskRunCacheTest, BitFlipAnywhereIsAMissNeverAWrongSeries)
{
    // Payload doubles are all "valid" bit patterns, so without the
    // payload checksum a flipped series byte would parse fine and
    // replay a silently wrong curve.  Sample flips across the whole
    // segment — header, record headers, keys, payloads, index block —
    // and demand a miss or the bit-exact original every time.  (Record
    // headers are outside the read path, so a flip there leaves the
    // still-intact payload readable — that is the "bit-exact original"
    // arm, never a wrong curve.)
    const scenarios::ScenarioResult original = sampleResult();
    {
        DiskRunCache cache(root_, quietOpts());
        ASSERT_TRUE(cache.store("key-f", original));
        ASSERT_TRUE(cache.flush());
    }
    const std::vector<std::string> segs =
        fault::listSegmentFiles(DiskRunCache::versionDir(root_));
    ASSERT_EQ(segs.size(), 1u);
    const std::int64_t size = fault::fileSize(segs[0]);
    ASSERT_GT(size, 0);

    int flips = 0, misses = 0;
    for (std::int64_t off = 0; off < size; off += 97, ++flips) {
        const unsigned bit = static_cast<unsigned>(off % 8);
        ASSERT_TRUE(fault::flipBit(segs[0],
                                   static_cast<std::uint64_t>(off), bit));
        DiskRunCache reader(root_, quietOpts());
        scenarios::ScenarioResult out;
        if (reader.load("key-f", out)) {
            expectEqual(original, out); // hit must be bit-exact
        } else {
            ++misses;
        }
        // Undo the flip so each iteration tests exactly one bad bit.
        ASSERT_TRUE(fault::flipBit(segs[0],
                                   static_cast<std::uint64_t>(off), bit));
    }
    EXPECT_GT(flips, 100) << "sampling did not cover the segment";
    EXPECT_GT(misses, 0) << "no flip ever landed on the read path";

    // With every flip undone the entry is intact again: bit-exact.
    DiskRunCache reader(root_, quietOpts());
    scenarios::ScenarioResult restored;
    ASSERT_TRUE(reader.load("key-f", restored));
    expectEqual(original, restored);
}

TEST_F(DiskRunCacheTest, WarmProcessReadsBatchedSegmentsNotPerEntry)
{
    // The v6 point: a warm second process opens a handful of segments
    // (at most one per shard here), not one file per entry.  Reads are
    // one payload pread each.
    constexpr int kEntries = 64;
    {
        DiskRunCache writer(root_, quietOpts());
        for (int i = 0; i < kEntries; ++i)
            ASSERT_TRUE(writer.store("scn|pol|s=" + std::to_string(i),
                                     sampleResult()));
    } // destructor flushes

    DiskRunCache reader(root_, quietOpts());
    scenarios::ScenarioResult out;
    for (int i = 0; i < kEntries; ++i)
        ASSERT_TRUE(reader.load("scn|pol|s=" + std::to_string(i), out));
    const store::StoreStats s = reader.ioStats();
    EXPECT_EQ(s.reads, static_cast<std::uint64_t>(kEntries));
    EXPECT_GT(s.read_bytes, 0u);
    EXPECT_LE(s.segments_opened,
              reader.segmentStore().shardCount())
        << "per-entry opens crept back into the warm path";
}

TEST_F(DiskRunCacheTest, FaultsInjectedFieldRoundTrips)
{
    DiskRunCache cache(root_);
    scenarios::ScenarioResult r = sampleResult();
    r.faults_injected = 424242;
    ASSERT_TRUE(cache.store("key-chaos", r));
    scenarios::ScenarioResult out;
    ASSERT_TRUE(cache.load("key-chaos", out));
    EXPECT_EQ(out.faults_injected, 424242u);
}

TEST_F(DiskRunCacheTest, DetachStopsSpilling)
{
    RunCache cache;
    cache.attachDiskCache(root_);
    cache.attachDiskCache("");
    (void)cache.getOrRun("k", [] {
        return scenarios::ScenarioResult{};
    });
    EXPECT_EQ(cache.stats().disk_stores, 0u);
    EXPECT_FALSE(fs::exists(root_));
}

} // namespace
} // namespace smartconf::exec
