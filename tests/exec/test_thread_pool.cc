#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

using smartconf::exec::ThreadPool;

TEST(ThreadPool, SubmitReturnsResult)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.size(), 2u);
    std::future<int> f = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DefaultConcurrencyAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 500; ++i)
        futures.push_back(pool.submit([i] { return i; }));
    int sum = 0;
    for (auto &f : futures)
        sum += f.get();
    EXPECT_EQ(sum, 499 * 500 / 2);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    std::future<int> ok = pool.submit([] { return 1; });
    std::future<int> bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 1);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, SubmitFromManyThreadsStress)
{
    ThreadPool pool(4);
    constexpr int kSubmitters = 8;
    constexpr int kTasksEach = 200;
    std::atomic<int> executed{0};

    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<int>>> futures(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            for (int i = 0; i < kTasksEach; ++i)
                futures[s].push_back(pool.submit([&executed, i] {
                    executed.fetch_add(1, std::memory_order_relaxed);
                    return i;
                }));
        });
    }
    for (std::thread &t : submitters)
        t.join();

    int sum = 0;
    for (auto &per_thread : futures)
        for (auto &f : per_thread)
            sum += f.get();
    EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
    EXPECT_EQ(sum, kSubmitters * (kTasksEach - 1) * kTasksEach / 2);
}

TEST(ThreadPool, WorkerCanSubmitFollowUpWork)
{
    ThreadPool pool(2);
    // The outer task submits the inner one and hands back its future
    // without blocking on it (blocking inside a worker could deadlock
    // a saturated pool).
    std::future<std::future<int>> outer =
        pool.submit([&pool] { return pool.submit([] { return 9; }); });
    EXPECT_EQ(outer.get().get(), 9);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> executed{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&executed] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                executed.fetch_add(1);
            });
    } // ~ThreadPool joins after the queue drains
    EXPECT_EQ(executed.load(), 50);
}

TEST(ThreadPool, ForkJoinRunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.forkJoin(hits.size(),
                  [&](std::size_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ForkJoinSmallCasesInline)
{
    ThreadPool pool(2);
    int ran = 0;
    pool.forkJoin(0, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 0);
    pool.forkJoin(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++ran;
    });
    EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, ForkJoinReusableAcrossCalls)
{
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    for (int round = 0; round < 50; ++round)
        pool.forkJoin(64, [&](std::size_t i) {
            sum.fetch_add(static_cast<long>(i));
        });
    EXPECT_EQ(sum.load(), 50L * (63 * 64 / 2));
}

TEST(ThreadPool, ForkJoinPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.forkJoin(100,
                               [](std::size_t i) {
                                   if (i == 37)
                                       throw std::runtime_error("i37");
                               }),
                 std::runtime_error);
    // The pool survives and keeps working.
    std::atomic<int> n{0};
    pool.forkJoin(8, [&](std::size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, ForkJoinStealStressAcrossWorkersMidTick)
{
    // The tsan target for the sharded data plane: skewed per-block
    // work forces idle runners to steal blocks from other stripes
    // mid-"tick" while unrelated submit() traffic churns the deques.
    ThreadPool pool(4);
    ThreadPool churn(2);
    std::atomic<bool> stop{false};
    std::future<void> noise = churn.submit([&] {
        while (!stop.load()) {
            std::vector<std::future<int>> fs;
            for (int i = 0; i < 16; ++i)
                fs.push_back(pool.submit([i] { return i; }));
            for (auto &f : fs)
                f.get();
        }
    });

    std::vector<std::atomic<int>> hits(16);
    for (int round = 0; round < 200; ++round) {
        for (auto &h : hits)
            h.store(0);
        pool.forkJoin(hits.size(), [&](std::size_t b) {
            // Block 0 is ~100x the work of block 15: the home-stripe
            // owner of the cheap tail must wrap-scan into other
            // stripes to finish the tick.
            volatile double acc = 0.0;
            const int work = 100 * static_cast<int>(hits.size() - b);
            for (int k = 0; k < work; ++k)
                acc = acc + static_cast<double>(k);
            hits[b].fetch_add(1);
        });
        for (auto &h : hits)
            ASSERT_EQ(h.load(), 1);
    }
    stop.store(true);
    noise.get();
}

TEST(ThreadPool, ForkJoinFromAnotherPoolsWorker)
{
    // The sharded data plane calls the global shard pool's forkJoin
    // from a SweepRunner worker thread — i.e. from a *different*
    // pool's worker.  That nesting must complete and produce every
    // index.
    ThreadPool outer(2);
    ThreadPool inner(2);
    std::future<int> f = outer.submit([&] {
        std::atomic<int> n{0};
        inner.forkJoin(100, [&](std::size_t) { n.fetch_add(1); });
        return n.load();
    });
    EXPECT_EQ(f.get(), 100);
}

} // namespace
