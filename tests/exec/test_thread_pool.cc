#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

using smartconf::exec::ThreadPool;

TEST(ThreadPool, SubmitReturnsResult)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.size(), 2u);
    std::future<int> f = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DefaultConcurrencyAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 500; ++i)
        futures.push_back(pool.submit([i] { return i; }));
    int sum = 0;
    for (auto &f : futures)
        sum += f.get();
    EXPECT_EQ(sum, 499 * 500 / 2);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    std::future<int> ok = pool.submit([] { return 1; });
    std::future<int> bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 1);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, SubmitFromManyThreadsStress)
{
    ThreadPool pool(4);
    constexpr int kSubmitters = 8;
    constexpr int kTasksEach = 200;
    std::atomic<int> executed{0};

    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<int>>> futures(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            for (int i = 0; i < kTasksEach; ++i)
                futures[s].push_back(pool.submit([&executed, i] {
                    executed.fetch_add(1, std::memory_order_relaxed);
                    return i;
                }));
        });
    }
    for (std::thread &t : submitters)
        t.join();

    int sum = 0;
    for (auto &per_thread : futures)
        for (auto &f : per_thread)
            sum += f.get();
    EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
    EXPECT_EQ(sum, kSubmitters * (kTasksEach - 1) * kTasksEach / 2);
}

TEST(ThreadPool, WorkerCanSubmitFollowUpWork)
{
    ThreadPool pool(2);
    // The outer task submits the inner one and hands back its future
    // without blocking on it (blocking inside a worker could deadlock
    // a saturated pool).
    std::future<std::future<int>> outer =
        pool.submit([&pool] { return pool.submit([] { return 9; }); });
    EXPECT_EQ(outer.get().get(), 9);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> executed{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&executed] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                executed.fetch_add(1);
            });
    } // ~ThreadPool joins after the queue drains
    EXPECT_EQ(executed.load(), 50);
}

} // namespace
