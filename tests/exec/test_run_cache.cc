#include "exec/run_cache.h"

#include <atomic>
#include <future>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "scenarios/scenario.h"

namespace {

using smartconf::exec::RunCache;
using smartconf::exec::ThreadPool;
using smartconf::scenarios::Policy;
using smartconf::scenarios::ScenarioResult;

ScenarioResult
makeResult(double tradeoff)
{
    ScenarioResult r;
    r.scenario_id = "T";
    r.tradeoff = tradeoff;
    return r;
}

TEST(RunCache, MissThenHit)
{
    RunCache cache;
    int calls = 0;
    auto fn = [&calls] {
        ++calls;
        return makeResult(1.5);
    };
    EXPECT_FALSE(cache.contains("k"));
    EXPECT_DOUBLE_EQ(cache.getOrRun("k", fn).tradeoff, 1.5);
    EXPECT_TRUE(cache.contains("k"));
    EXPECT_DOUBLE_EQ(cache.getOrRun("k", fn).tradeoff, 1.5);
    EXPECT_EQ(calls, 1);
    const RunCache::Stats s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(RunCache, DistinctKeysDistinctEntries)
{
    RunCache cache;
    cache.getOrRun("a", [] { return makeResult(1.0); });
    cache.getOrRun("b", [] { return makeResult(2.0); });
    EXPECT_DOUBLE_EQ(
        cache.getOrRun("a", [] { return makeResult(-1.0); }).tradeoff,
        1.0);
    EXPECT_DOUBLE_EQ(
        cache.getOrRun("b", [] { return makeResult(-1.0); }).tradeoff,
        2.0);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(RunCache, ClearResetsEntriesAndStats)
{
    RunCache cache;
    cache.getOrRun("a", [] { return makeResult(1.0); });
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(RunCache, ExactlyOnceUnderConcurrency)
{
    RunCache cache;
    ThreadPool pool(8);
    std::atomic<int> executions{0};
    constexpr int kCallers = 64;

    std::vector<std::future<double>> futures;
    for (int i = 0; i < kCallers; ++i)
        futures.push_back(pool.submit([&] {
            return cache
                .getOrRun("hot",
                          [&executions] {
                              executions.fetch_add(1);
                              return makeResult(3.25);
                          })
                .tradeoff;
        }));
    for (auto &f : futures)
        EXPECT_DOUBLE_EQ(f.get(), 3.25);

    // Racing callers joined the single in-flight run instead of
    // re-simulating: that is the whole point of the cache.
    EXPECT_EQ(executions.load(), 1);
    const RunCache::Stats s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kCallers - 1));
}

TEST(RunCache, ExceptionIsRethrownToEveryCaller)
{
    RunCache cache;
    auto boom = []() -> ScenarioResult {
        throw std::runtime_error("sim failed");
    };
    EXPECT_THROW(cache.getOrRun("bad", boom), std::runtime_error);
    // The failure is memoized like any result (deterministic sims
    // fail deterministically).
    EXPECT_THROW(
        cache.getOrRun("bad", [] { return makeResult(0.0); }),
        std::runtime_error);
}

// --- Policy::cacheKey() / operator== -------------------------------

TEST(PolicyCacheKey, UniqueAcrossAllFourKinds)
{
    const std::vector<Policy> policies = {
        Policy::makeStatic(90.0),
        Policy::smart(),
        Policy::singlePole(0.9),
        Policy::noVirtualGoal(),
    };
    std::set<std::string> keys;
    for (const Policy &p : policies)
        keys.insert(p.cacheKey());
    EXPECT_EQ(keys.size(), policies.size());
}

TEST(PolicyCacheKey, DistinguishesStaticValues)
{
    EXPECT_NE(Policy::makeStatic(90.0).cacheKey(),
              Policy::makeStatic(90.5).cacheKey());
    EXPECT_NE(Policy::makeStatic(90.0), Policy::makeStatic(90.5));
    // Nearly-equal doubles stay distinct (round-trip encoding).
    EXPECT_NE(Policy::makeStatic(1.0).cacheKey(),
              Policy::makeStatic(1.0 + 1e-15).cacheKey());
}

TEST(PolicyCacheKey, DistinguishesPoleOverride)
{
    EXPECT_NE(Policy::singlePole(0.9).cacheKey(),
              Policy::singlePole(0.95).cacheKey());

    Policy smart_plain = Policy::smart();
    Policy smart_pinned = Policy::smart();
    smart_pinned.pole_override = 0.9;
    EXPECT_NE(smart_plain.cacheKey(), smart_pinned.cacheKey());
    EXPECT_FALSE(smart_plain == smart_pinned);
}

TEST(PolicyCacheKey, DistinguishesLabels)
{
    // The label feeds through to ScenarioResult::policy_label, so two
    // runs differing only in label must not be conflated.
    EXPECT_NE(Policy::makeStatic(90.0, "A").cacheKey(),
              Policy::makeStatic(90.0, "B").cacheKey());
}

TEST(PolicyCacheKey, EqualPoliciesCompareEqual)
{
    EXPECT_EQ(Policy::smart(), Policy::smart());
    EXPECT_EQ(Policy::makeStatic(42.0), Policy::makeStatic(42.0));
    EXPECT_EQ(Policy::singlePole(0.9), Policy::singlePole(0.9));
    EXPECT_EQ(Policy::noVirtualGoal(), Policy::noVirtualGoal());
}

TEST(PolicyCacheKey, RunCacheKeyIncludesScenarioAndSeed)
{
    const Policy p = Policy::smart();
    EXPECT_NE(RunCache::key("HB3813", p, 1), RunCache::key("HB3813", p, 2));
    EXPECT_NE(RunCache::key("HB3813", p, 1), RunCache::key("HB6728", p, 1));
    EXPECT_NE(RunCache::key("HB3813", p, 1),
              RunCache::key("HB3813/fig7", p, 1));
    EXPECT_EQ(RunCache::key("HB3813", p, 1), RunCache::key("HB3813", p, 1));
}

} // namespace
