#include "exec/sweep.h"

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/spec.h"
#include "scenarios/scenario.h"
#include "sim/shard.h"

namespace {

using namespace smartconf::scenarios;
using smartconf::exec::SweepArgs;
using smartconf::exec::SweepJob;
using smartconf::exec::SweepOptions;
using smartconf::exec::SweepRunner;

void
expectSeriesIdentical(const smartconf::sim::TimeSeries &a,
                      const smartconf::sim::TimeSeries &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.points()[i].tick, b.points()[i].tick);
        EXPECT_EQ(a.points()[i].value, b.points()[i].value); // exact
    }
}

/** Bit-identical: every scalar exactly equal, every curve point-wise. */
void
expectResultIdentical(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.scenario_id, b.scenario_id);
    EXPECT_EQ(a.policy_label, b.policy_label);
    EXPECT_EQ(a.violated, b.violated);
    EXPECT_EQ(a.violation_time_s, b.violation_time_s);
    EXPECT_EQ(a.worst_goal_metric, b.worst_goal_metric);
    EXPECT_EQ(a.goal_value, b.goal_value);
    EXPECT_EQ(a.tradeoff, b.tradeoff);
    EXPECT_EQ(a.raw_tradeoff, b.raw_tradeoff);
    EXPECT_EQ(a.mean_conf, b.mean_conf);
    EXPECT_EQ(a.ops_simulated, b.ops_simulated);
    EXPECT_EQ(a.faults_injected, b.faults_injected);
    ASSERT_EQ(a.shard_ops.size(), b.shard_ops.size());
    for (std::size_t i = 0; i < a.shard_ops.size(); ++i)
        EXPECT_EQ(a.shard_ops[i], b.shard_ops[i]);
    expectSeriesIdentical(a.perf_series, b.perf_series);
    expectSeriesIdentical(a.conf_series, b.conf_series);
    expectSeriesIdentical(a.tradeoff_series, b.tradeoff_series);
}

std::vector<SweepJob>
allScenarioJobs()
{
    std::vector<SweepJob> jobs;
    for (const auto &s : makeAllScenarios()) {
        const ScenarioInfo &info = s->info();
        jobs.push_back(
            SweepJob::forScenario(info.id, Policy::smart(), 1));
        jobs.push_back(SweepJob::forScenario(
            info.id, Policy::makeStatic(info.patch_default), 1));
    }
    return jobs;
}

TEST(SweepDeterminism, Jobs1AndJobs8BitIdenticalForAllSixScenarios)
{
    const std::vector<SweepJob> jobs = allScenarioJobs();

    SweepRunner serial(SweepOptions{1, true});
    SweepRunner parallel(SweepOptions{8, true});
    EXPECT_EQ(serial.jobs(), 1u);
    EXPECT_EQ(parallel.jobs(), 8u);

    const std::vector<ScenarioResult> a = serial.run(jobs);
    const std::vector<ScenarioResult> b = parallel.run(jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("job #" + std::to_string(i) + " (" +
                     a[i].scenario_id + ", " + a[i].policy_label + ")");
        expectResultIdentical(a[i], b[i]);
    }

    // All twelve triples are distinct: no duplicate simulation ran.
    EXPECT_EQ(serial.cache().stats().misses, jobs.size());
    EXPECT_EQ(serial.cache().stats().hits, 0u);
    EXPECT_EQ(parallel.cache().stats().misses, jobs.size());
    EXPECT_EQ(parallel.cache().stats().hits, 0u);
}

TEST(SweepDeterminism, JobsAndShardWorkersMatrixBitIdentical)
{
    // The sharded data plane's core guarantee: outputs are a pure
    // function of the logical 16-shard layout, so every
    // {--jobs} x {--shard-workers} combination — including one chaos
    // campaign exercising the fault plane — is byte-identical.
    std::vector<SweepJob> jobs = allScenarioJobs();
    jobs.push_back(SweepJob::forScenario(
        "HB3813",
        Policy::smart().withChaos(
            smartconf::fault::ChaosSpec::kitchenSink(7)),
        1));

    smartconf::sim::setShardWorkers(1);
    SweepRunner base(SweepOptions{1, true});
    const std::vector<ScenarioResult> ref = base.run(jobs);
    ASSERT_EQ(ref.size(), jobs.size());

    for (const std::size_t njobs : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
        for (const std::size_t sw : {std::size_t{1}, std::size_t{4}}) {
            if (njobs == 1 && sw == 1)
                continue; // that's the reference
            smartconf::sim::setShardWorkers(sw);
            SweepRunner runner(SweepOptions{njobs, true});
            const std::vector<ScenarioResult> got = runner.run(jobs);
            ASSERT_EQ(got.size(), ref.size());
            for (std::size_t i = 0; i < ref.size(); ++i) {
                SCOPED_TRACE("jobs=" + std::to_string(njobs) +
                             " shard_workers=" + std::to_string(sw) +
                             " job #" + std::to_string(i) + " (" +
                             ref[i].scenario_id + ", " +
                             ref[i].policy_label + ")");
                expectResultIdentical(ref[i], got[i]);
            }
        }
    }
    smartconf::sim::setShardWorkers(1);
}

TEST(SweepDeterminism, ShardOpsSumMatchesOpsSimulated)
{
    // The per-shard counters partition the generated workload: lanes
    // sum to the run's ops_simulated for every generator-driven
    // scenario (MR2820 counts completed tasks on both sides too).
    smartconf::sim::setShardWorkers(1);
    SweepRunner runner(SweepOptions{1, true});
    for (const char *id : {"HB3813", "HB6728", "HB2149", "CA6059",
                           "HD4995", "MR2820"}) {
        const ScenarioResult r = runner.runOne(SweepJob::forScenario(
            id, Policy::smart(), 3));
        SCOPED_TRACE(id);
        ASSERT_EQ(r.shard_ops.size(),
                  static_cast<std::size_t>(smartconf::sim::kShards));
        std::uint64_t sum = 0;
        for (const std::uint64_t v : r.shard_ops)
            sum += v;
        EXPECT_EQ(sum, r.ops_simulated);
    }
}

TEST(SweepDeterminism, ReplayOnWarmCacheIsAllHitsAndIdentical)
{
    const std::vector<SweepJob> jobs = allScenarioJobs();
    SweepRunner runner(SweepOptions{4, true});

    const std::vector<ScenarioResult> first = runner.run(jobs);
    const std::vector<ScenarioResult> second = runner.run(jobs);

    EXPECT_EQ(runner.cache().stats().misses, jobs.size());
    EXPECT_EQ(runner.cache().stats().hits, jobs.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectResultIdentical(first[i], second[i]);
}

TEST(SweepDeterminism, ResultsArriveInSubmissionOrder)
{
    // Job 0 finishes last by construction; order must not care.
    std::vector<SweepJob> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back(SweepJob::custom("", [i] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds((8 - i) * 10));
            ScenarioResult r;
            r.scenario_id = "job-" + std::to_string(i);
            return r;
        }));

    SweepRunner runner(SweepOptions{8, true});
    const std::vector<ScenarioResult> out = runner.run(jobs);
    ASSERT_EQ(out.size(), jobs.size());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[i].scenario_id, "job-" + std::to_string(i));
}

TEST(SweepDeterminism, DuplicateJobsSimulateOnce)
{
    std::vector<SweepJob> jobs;
    for (int i = 0; i < 6; ++i)
        jobs.push_back(
            SweepJob::forScenario("HB3813", Policy::smart(), 1));

    SweepRunner runner(SweepOptions{4, true});
    const std::vector<ScenarioResult> out = runner.run(jobs);
    EXPECT_EQ(runner.cache().stats().misses, 1u);
    EXPECT_EQ(runner.cache().stats().hits, 5u);
    for (std::size_t i = 1; i < out.size(); ++i)
        expectResultIdentical(out[0], out[i]);
}

TEST(SweepDeterminism, JobExceptionPropagatesFromRun)
{
    std::vector<SweepJob> jobs;
    jobs.push_back(SweepJob::custom("", [] {
        ScenarioResult r;
        r.scenario_id = "fine";
        return r;
    }));
    jobs.push_back(SweepJob::custom("", []() -> ScenarioResult {
        throw std::runtime_error("job failed");
    }));

    SweepRunner serial(SweepOptions{1, true});
    EXPECT_THROW(serial.run(jobs), std::runtime_error);
    SweepRunner parallel(SweepOptions{4, true});
    EXPECT_THROW(parallel.run(jobs), std::runtime_error);
}

TEST(SweepDeterminism, UnknownScenarioIdThrows)
{
    SweepRunner runner(SweepOptions{1, true});
    EXPECT_THROW(runner.run({SweepJob::forScenario(
                     "NOPE", Policy::smart(), 1)}),
                 std::invalid_argument);
}

TEST(SweepArgsParsing, JobsAndJsonFlags)
{
    const char *argv1[] = {"bench", "--jobs", "4", "--json"};
    SweepArgs a = smartconf::exec::parseSweepArgs(
        4, const_cast<char **>(argv1));
    EXPECT_EQ(a.sweep.jobs, 4u);
    EXPECT_TRUE(a.json);

    const char *argv2[] = {"bench", "--jobs=2"};
    SweepArgs b = smartconf::exec::parseSweepArgs(
        2, const_cast<char **>(argv2));
    EXPECT_EQ(b.sweep.jobs, 2u);
    EXPECT_FALSE(b.json);

    const char *argv3[] = {"bench"};
    SweepArgs c = smartconf::exec::parseSweepArgs(
        1, const_cast<char **>(argv3));
    EXPECT_EQ(c.sweep.jobs, 0u); // 0 = hardware concurrency
}

} // namespace
