/**
 * @file
 * Stress and unit coverage for the work-stealing executor internals:
 * forced-steal schedules, skewed task durations, shutdown drains with
 * follow-up submissions, parallelFor semantics, and the Chase-Lev
 * deque / arena building blocks.  The ThreadPool/StealDeque suites run
 * under the tsan preset (see CMakePresets.json).
 */

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/arena.h"
#include "exec/steal_deque.h"
#include "exec/thread_pool.h"

namespace {

using smartconf::exec::MonotonicArena;
using smartconf::exec::StealDeque;
using smartconf::exec::ThreadPool;

/**
 * reclaim() is opportunistic: a future becomes ready when the promise
 * is satisfied, a beat before the worker releases the task node and
 * drops the outstanding count.  Retry briefly so the tests assert
 * "reclaims once quiescent", not "reclaims on the first try".
 */
bool
reclaimSoon(ThreadPool &pool)
{
    for (int i = 0; i < 2000; ++i) {
        if (pool.reclaim())
            return true;
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    return false;
}

TEST(ThreadPoolStress, StealsAreTheOnlyPathToBlockedProducersWork)
{
    // One worker submits a burst of follow-up tasks (they land on its
    // own deque) and then blocks on their futures.  The producer's
    // slot is occupied, so the only way those tasks can run — and the
    // only way this test can terminate — is other workers stealing
    // them.  This forces the steal path deterministically instead of
    // hoping a scheduler preemption creates imbalance.
    ThreadPool pool(4);
    constexpr int kTasks = 64;
    std::atomic<int> executed{0};

    std::future<int> producer = pool.submit([&pool, &executed] {
        std::vector<std::future<int>> inner;
        inner.reserve(kTasks);
        for (int i = 0; i < kTasks; ++i)
            inner.push_back(pool.submit([&executed, i] {
                executed.fetch_add(1, std::memory_order_relaxed);
                return i;
            }));
        int sum = 0;
        for (auto &f : inner)
            sum += f.get();
        return sum;
    });

    EXPECT_EQ(producer.get(), (kTasks - 1) * kTasks / 2);
    EXPECT_EQ(executed.load(), kTasks);
    EXPECT_GE(pool.steals(), static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadPoolStress, SkewedTaskDurationsAllComplete)
{
    // Steal-heavy by load shape: a few grinding tasks next to many
    // trivial ones.  Idle workers must keep draining the short tail
    // while the long tasks pin their owners.
    ThreadPool pool(4);
    constexpr int kTasks = 400;
    std::vector<std::future<long>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit([i]() -> long {
            if (i % 37 == 0) {
                // Grinder: ~100x the work of the short tasks.
                volatile long acc = 0;
                for (long k = 0; k < 200000; ++k)
                    acc += k;
                return acc >= 0 ? i : -1;
            }
            return i;
        }));
    }
    long sum = 0;
    for (auto &f : futures)
        sum += f.get();
    EXPECT_EQ(sum, static_cast<long>(kTasks - 1) * kTasks / 2);
}

TEST(ThreadPoolStress, DestructorDrainsFollowUpSubmissions)
{
    // Satellite criterion: the drain covers not just queued tasks but
    // tasks that *those* tasks submit while the destructor is already
    // waiting.
    std::atomic<int> outer_run{0};
    std::atomic<int> inner_run{0};
    constexpr int kOuter = 32;
    {
        ThreadPool pool(2);
        for (int i = 0; i < kOuter; ++i) {
            pool.submit([&pool, &outer_run, &inner_run] {
                outer_run.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
                pool.submit([&inner_run] {
                    inner_run.fetch_add(1,
                                        std::memory_order_relaxed);
                });
            });
        }
    } // ~ThreadPool must run all 32 outers AND all 32 inners
    EXPECT_EQ(outer_run.load(), kOuter);
    EXPECT_EQ(inner_run.load(), kOuter);
}

TEST(ThreadPoolStress, ReclaimRecyclesNodesAcrossBatches)
{
    ThreadPool pool(2);
    for (int i = 0; i < 256; ++i)
        pool.submit([] { return 0; }).get();
    EXPECT_TRUE(reclaimSoon(pool));
    const std::size_t blocks = pool.nodeArenaBlocks();
    // A second batch of the same shape reuses the rewound arena: no
    // further growth.
    for (int batch = 0; batch < 4; ++batch) {
        for (int i = 0; i < 256; ++i)
            pool.submit([] { return 0; }).get();
        EXPECT_TRUE(reclaimSoon(pool));
    }
    EXPECT_EQ(pool.nodeArenaBlocks(), blocks);
}

TEST(ThreadPoolStress, ReclaimRefusesWhileTasksOutstanding)
{
    ThreadPool pool(2);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    std::future<int> blocked =
        pool.submit([opened]() mutable {
            opened.get();
            return 5;
        });
    EXPECT_FALSE(pool.reclaim()); // the gated task is outstanding
    gate.set_value();
    EXPECT_EQ(blocked.get(), 5);
    EXPECT_TRUE(reclaimSoon(pool));
}

TEST(ThreadPoolParallelFor, ResultsLandAtOwnIndex)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 1000;
    std::vector<std::size_t> out(kN, 0);
    pool.parallelFor(kN, [&](std::size_t i) { out[i] = i * 3 + 1; });
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(out[i], i * 3 + 1) << "index " << i;
}

TEST(ThreadPoolParallelFor, ZeroIterationsIsANoop)
{
    ThreadPool pool(2);
    bool touched = false;
    pool.parallelFor(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPoolParallelFor, FewerItemsThanWorkers)
{
    ThreadPool pool(8);
    std::vector<int> out(3, 0);
    pool.parallelFor(3, [&](std::size_t i) {
        out[i] = static_cast<int>(i) + 10;
    });
    EXPECT_EQ(out[0], 10);
    EXPECT_EQ(out[1], 11);
    EXPECT_EQ(out[2], 12);
}

TEST(ThreadPoolParallelFor, LowestIndexExceptionWinsAndAllIndicesRun)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 500;
    std::atomic<std::size_t> ran{0};
    try {
        pool.parallelFor(kN, [&](std::size_t i) {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i == 3 || i == 250 || i == 400)
                throw std::runtime_error("body " +
                                         std::to_string(i));
        });
        FAIL() << "expected parallelFor to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "body 3");
    }
    // Every index still executed; a throwing body does not abort the
    // rest of the grid.
    EXPECT_EQ(ran.load(), kN);
}

TEST(ThreadPoolParallelFor, RepeatedCallsWithReclaim)
{
    ThreadPool pool(4);
    std::vector<double> out(256, 0.0);
    for (int round = 0; round < 10; ++round) {
        pool.parallelFor(out.size(), [&](std::size_t i) {
            out[i] = static_cast<double>(i) * round;
        });
        EXPECT_TRUE(reclaimSoon(pool));
        for (std::size_t i = 0; i < out.size(); ++i)
            ASSERT_EQ(out[i], static_cast<double>(i) * round);
    }
}

TEST(StealDeque, OwnerPushPopIsLifo)
{
    MonotonicArena arena;
    StealDeque<int> deque(arena, 8);
    int items[3] = {1, 2, 3};
    deque.push(&items[0]);
    deque.push(&items[1]);
    deque.push(&items[2]);
    EXPECT_EQ(deque.pop(), &items[2]);
    EXPECT_EQ(deque.pop(), &items[1]);
    EXPECT_EQ(deque.pop(), &items[0]);
    EXPECT_EQ(deque.pop(), nullptr);
}

TEST(StealDeque, StealTakesOldestFirst)
{
    MonotonicArena arena;
    StealDeque<int> deque(arena, 8);
    int items[3] = {1, 2, 3};
    for (int &item : items)
        deque.push(&item);
    EXPECT_EQ(deque.steal(), &items[0]);
    EXPECT_EQ(deque.steal(), &items[1]);
    EXPECT_EQ(deque.steal(), &items[2]);
    EXPECT_EQ(deque.steal(), nullptr);
}

TEST(StealDeque, GrowthPreservesEveryElement)
{
    MonotonicArena arena;
    StealDeque<int> deque(arena, 8);
    constexpr int kN = 1000; // forces several doublings
    std::vector<int> items(kN);
    for (int i = 0; i < kN; ++i) {
        items[i] = i;
        deque.push(&items[i]);
    }
    EXPECT_GE(deque.capacity(), kN);
    // Steal half from the top (oldest), pop half from the bottom.
    for (int i = 0; i < kN / 2; ++i)
        ASSERT_EQ(deque.steal(), &items[i]);
    for (int i = kN - 1; i >= kN / 2; --i)
        ASSERT_EQ(deque.pop(), &items[i]);
    EXPECT_EQ(deque.pop(), nullptr);
    EXPECT_EQ(deque.steal(), nullptr);
}

TEST(StealDeque, ConcurrentOwnerAndThievesConserveItems)
{
    // Owner interleaves pushes and pops while three thieves hammer
    // steal(); every item must be taken exactly once, none lost, none
    // duplicated.  Run under the tsan preset this doubles as the
    // memory-model check for the seq_cst Chase-Lev formulation.
    MonotonicArena arena;
    StealDeque<int> deque(arena, 8);
    constexpr int kItems = 20000;
    std::vector<int> items(kItems);
    std::iota(items.begin(), items.end(), 0);
    std::vector<std::atomic<int>> taken(kItems);
    for (auto &t : taken)
        t.store(0);
    std::atomic<int> total_taken{0};
    std::atomic<bool> owner_done{false};

    auto take = [&](int *p) {
        taken[*p].fetch_add(1, std::memory_order_relaxed);
        total_taken.fetch_add(1, std::memory_order_relaxed);
    };

    std::vector<std::thread> thieves;
    for (int t = 0; t < 3; ++t) {
        thieves.emplace_back([&] {
            while (!owner_done.load(std::memory_order_acquire) ||
                   deque.sizeApprox() > 0) {
                if (int *p = deque.steal())
                    take(p);
            }
        });
    }

    for (int i = 0; i < kItems; ++i) {
        deque.push(&items[i]);
        if (i % 3 == 0) {
            if (int *p = deque.pop())
                take(p);
        }
    }
    // Owner drains what the thieves have not raced away yet.
    while (int *p = deque.pop())
        take(p);
    owner_done.store(true, std::memory_order_release);
    for (std::thread &t : thieves)
        t.join();
    // Late stragglers: deque must now be empty.
    EXPECT_EQ(deque.steal(), nullptr);

    EXPECT_EQ(total_taken.load(), kItems);
    for (int i = 0; i < kItems; ++i)
        ASSERT_EQ(taken[i].load(), 1) << "item " << i;
}

TEST(MonotonicArena, AllocationsAreAligned)
{
    MonotonicArena arena;
    for (std::size_t align : {std::size_t(8), std::size_t(16),
                              std::size_t(64)}) {
        void *p = arena.allocate(24, align);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
    }
}

TEST(MonotonicArena, ResetReusesBlocksWithoutGrowth)
{
    MonotonicArena arena(1024);
    for (int i = 0; i < 100; ++i)
        arena.allocate(64);
    const std::size_t blocks = arena.blocksAllocated();
    EXPECT_GT(blocks, 1u); // the pattern spilled into extra blocks
    for (int round = 0; round < 5; ++round) {
        arena.reset();
        for (int i = 0; i < 100; ++i)
            arena.allocate(64);
    }
    EXPECT_EQ(arena.blocksAllocated(), blocks);
    EXPECT_EQ(arena.resets(), 5u);
}

TEST(MonotonicArena, OversizedRequestGetsItsOwnBlock)
{
    MonotonicArena arena(1024);
    void *big = arena.allocate(100 * 1024);
    EXPECT_NE(big, nullptr);
    EXPECT_GE(arena.bytesReserved(), std::size_t(100 * 1024));
    // The arena stays usable afterwards.
    void *small = arena.allocate(16);
    EXPECT_NE(small, nullptr);
}

TEST(MonotonicArena, AllocateArrayIsTypedAndWritable)
{
    MonotonicArena arena;
    double *xs = arena.allocateArray<double>(128);
    for (int i = 0; i < 128; ++i)
        xs[i] = i * 0.5;
    EXPECT_EQ(xs[127], 63.5);
}

} // namespace
