/** @file Unit tests for the HDFS-style namespace tree. */

#include <gtest/gtest.h>

#include "dfs/namespace_tree.h"

namespace smartconf::dfs {
namespace {

TEST(NamespaceTree, MakeDirsCreatesParents)
{
    NamespaceTree t;
    t.makeDirs("/data/client1/logs");
    EXPECT_TRUE(t.exists("/data"));
    EXPECT_TRUE(t.exists("/data/client1"));
    EXPECT_TRUE(t.exists("/data/client1/logs"));
    EXPECT_FALSE(t.exists("/other"));
}

TEST(NamespaceTree, AddFilesAndCounts)
{
    NamespaceTree t;
    t.addFiles("/data/a", 5);
    t.addFiles("/data/b", 3);
    t.addFiles("/data", 2);
    EXPECT_EQ(t.filesAt("/data"), 2u);
    EXPECT_EQ(t.filesAt("/data/a"), 5u);
    EXPECT_EQ(t.filesUnder("/data"), 10u);
    EXPECT_EQ(t.filesUnder("/"), 10u);
    EXPECT_EQ(t.filesUnder("/data/a"), 5u);
}

TEST(NamespaceTree, MissingPathsCountZero)
{
    NamespaceTree t;
    EXPECT_EQ(t.filesAt("/nope"), 0u);
    EXPECT_EQ(t.filesUnder("/nope"), 0u);
}

TEST(NamespaceTree, DirCounts)
{
    NamespaceTree t;
    t.makeDirs("/a/b");
    t.makeDirs("/a/c");
    EXPECT_EQ(t.dirsUnder("/a"), 3u); // a, b, c
    EXPECT_EQ(t.dirsUnder("/"), 4u);  // root too
}

TEST(NamespaceTree, ListSortedChildren)
{
    NamespaceTree t;
    t.makeDirs("/data/zeta");
    t.makeDirs("/data/alpha");
    t.makeDirs("/data/mid");
    const auto kids = t.list("/data");
    ASSERT_EQ(kids.size(), 3u);
    EXPECT_EQ(kids[0], "alpha");
    EXPECT_EQ(kids[1], "mid");
    EXPECT_EQ(kids[2], "zeta");
    EXPECT_TRUE(t.list("/nope").empty());
}

TEST(NamespaceTree, PathNormalization)
{
    NamespaceTree t;
    t.addFiles("data/x", 1);      // no leading slash
    t.addFiles("/data/x/", 1);    // trailing slash
    EXPECT_EQ(t.filesAt("/data/x"), 2u);
}

TEST(NamespaceTree, RootQueries)
{
    NamespaceTree t;
    EXPECT_TRUE(t.exists("/"));
    EXPECT_EQ(t.filesUnder("/"), 0u);
    t.addFiles("/", 7);
    EXPECT_EQ(t.filesAt("/"), 7u);
}

} // namespace
} // namespace smartconf::dfs
