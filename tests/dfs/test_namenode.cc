/** @file Unit tests for the namenode lock/du dynamics (HD4995). */

#include <gtest/gtest.h>

#include "dfs/namenode.h"

namespace smartconf::dfs {
namespace {

NamenodeParams
params()
{
    NamenodeParams p;
    p.traversal_files_per_tick = 1000.0;
    p.yield_overhead_ticks = 2.0;
    p.write_service_per_tick = 50.0;
    return p;
}

workload::DfsRequest
writeReq(std::uint64_t client = 0)
{
    workload::DfsRequest r;
    r.type = workload::DfsRequest::Type::WriteFile;
    r.client = client;
    return r;
}

workload::DfsRequest
duReq(std::uint64_t files)
{
    workload::DfsRequest r;
    r.type = workload::DfsRequest::Type::ContentSummary;
    r.file_count = files;
    return r;
}

TEST(Namenode, WritesServedPromptlyWithoutDu)
{
    Namenode nn(params(), 1000);
    for (int t = 0; t < 10; ++t) {
        nn.submit(writeReq(), t);
        nn.step(t);
    }
    EXPECT_EQ(nn.servedWrites(), 10u);
    EXPECT_LE(nn.writeWaits().max(), 1.0);
}

TEST(Namenode, WritesGrowTheNamespace)
{
    Namenode nn(params(), 1000);
    nn.submit(writeReq(3), 0);
    nn.step(0);
    EXPECT_EQ(nn.tree().filesUnder("/data"), 1u);
    EXPECT_EQ(nn.tree().filesAt("/data/client3"), 1u);
}

TEST(Namenode, DuHoldsLockAndBlocksWrites)
{
    Namenode nn(params(), 10000); // one big chunk: 10 ticks of lock
    nn.submit(duReq(10000), 0);
    sim::Tick t = 0;
    nn.step(t);
    nn.submit(writeReq(), ++t); // arrives while the lock is held
    while (nn.duActive()) {
        nn.step(t);
        ++t;
    }
    nn.step(t);
    EXPECT_EQ(nn.servedWrites(), 1u);
    EXPECT_GE(nn.writeWaits().max(), 8.0) << "write waited out the du";
}

TEST(Namenode, ChunkingBoundsLockHoldTime)
{
    // limit 2000 at 1000 files/tick -> 2-tick holds.
    Namenode nn(params(), 2000);
    nn.submit(duReq(10000), 0);
    sim::Tick t = 0;
    while (nn.duActive() && t < 1000) {
        nn.step(t);
        ++t;
    }
    ASSERT_FALSE(nn.duActive());
    const auto &results = nn.duResults();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].files, 10000u);
    EXPECT_EQ(results[0].yields, 4u); // 5 chunks, 4 lock releases
    EXPECT_NEAR(nn.lastHoldTicks(), 2.0, 1.0);
}

TEST(Namenode, SmallerLimitMeansShorterWaitsButSlowerDu)
{
    auto run = [](std::uint64_t limit) {
        Namenode nn(params(), limit);
        nn.submit(duReq(20000), 0);
        sim::Tick t = 0;
        while (nn.duActive() && t < 5000) {
            if (t % 2 == 0)
                nn.submit(writeReq(t % 4), t);
            nn.step(t);
            ++t;
        }
        // Serve the writes that queued behind the final lock hold.
        while (nn.pendingWrites() > 0 && t < 6000) {
            nn.step(t);
            ++t;
        }
        return std::make_pair(nn.writeWaits().max(),
                              nn.duResults().at(0).latency_ticks);
    };
    const auto [wait_small, du_small] = run(1000);
    const auto [wait_big, du_big] = run(20000);
    EXPECT_LT(wait_small, wait_big);
    EXPECT_GT(du_small, du_big);
}

TEST(Namenode, RecentMaxWaitResets)
{
    Namenode nn(params(), 5000);
    nn.submit(duReq(5000), 0);
    sim::Tick t = 0;
    nn.step(t++);
    nn.submit(writeReq(), t);
    while (nn.duActive() || nn.pendingWrites() > 0) {
        nn.step(t);
        ++t;
    }
    EXPECT_GT(nn.takeRecentMaxWait(), 0.0);
    EXPECT_DOUBLE_EQ(nn.takeRecentMaxWait(), 0.0) << "tracker reset";
}

TEST(Namenode, SecondDuIgnoredWhileActive)
{
    Namenode nn(params(), 1000);
    nn.submit(duReq(50000), 0);
    nn.step(0);
    nn.submit(duReq(50000), 1); // dropped
    sim::Tick t = 1;
    while (nn.duActive() && t < 10000) {
        nn.step(t);
        ++t;
    }
    EXPECT_EQ(nn.duResults().size(), 1u);
}

TEST(Namenode, DynamicLimitAdjustment)
{
    Namenode nn(params(), 1000);
    nn.setSummaryLimit(0); // clamped to >= 1
    EXPECT_EQ(nn.summaryLimit(), 1u);
    nn.setSummaryLimit(4000);
    EXPECT_EQ(nn.summaryLimit(), 4000u);
}

TEST(Namenode, ChunksCompletedCounts)
{
    Namenode nn(params(), 1000);
    nn.submit(duReq(3000), 0);
    sim::Tick t = 0;
    while (nn.duActive() && t < 1000) {
        nn.step(t);
        ++t;
    }
    EXPECT_EQ(nn.chunksCompleted(), 3u);
}

} // namespace
} // namespace smartconf::dfs

namespace smartconf::dfs {
namespace {

TEST(NamenodeGrowth, DuOverLiveTreeUsesCurrentCount)
{
    NamenodeParams p;
    p.traversal_files_per_tick = 100.0;
    p.write_service_per_tick = 50.0;
    Namenode nn(p, 1000000);
    // Grow the namespace, then du with file_count = 0 (use the tree).
    for (int i = 0; i < 500; ++i) {
        workload::DfsRequest w;
        w.type = workload::DfsRequest::Type::WriteFile;
        w.client = static_cast<std::uint64_t>(i % 4);
        nn.submit(w, 0);
    }
    sim::Tick t = 0;
    while (nn.pendingWrites() > 0)
        nn.step(t++);
    ASSERT_EQ(nn.tree().filesUnder("/data"), 500u);

    workload::DfsRequest du;
    du.type = workload::DfsRequest::Type::ContentSummary;
    du.file_count = 0; // summarize what is actually there
    nn.submit(du, t);
    while (nn.duActive() && t < 1000)
        nn.step(t++);
    ASSERT_EQ(nn.duResults().size(), 1u);
    EXPECT_EQ(nn.duResults()[0].files, 500u);
}

TEST(NamenodeGrowth, WritesKeepFlowingBetweenChunks)
{
    NamenodeParams p;
    p.traversal_files_per_tick = 100.0;
    p.yield_overhead_ticks = 1.0;
    p.write_service_per_tick = 10.0;
    Namenode nn(p, 200); // 2-tick holds
    workload::DfsRequest du;
    du.type = workload::DfsRequest::Type::ContentSummary;
    du.file_count = 5000;
    nn.submit(du, 0);
    std::uint64_t served_mid = 0;
    for (sim::Tick t = 0; t < 200 && nn.duActive(); ++t) {
        workload::DfsRequest w;
        w.type = workload::DfsRequest::Type::WriteFile;
        nn.submit(w, t);
        nn.step(t);
        served_mid = nn.servedWrites();
    }
    EXPECT_GT(served_mid, 0u)
        << "chunking must let writes through mid-du";
}

} // namespace
} // namespace smartconf::dfs
