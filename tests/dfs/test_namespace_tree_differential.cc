/**
 * @file
 * Differential test: the flat interned NamespaceTree versus a naive
 * std::map reference model.
 *
 * The production tree interns path segments, stores nodes in an arena
 * and resolves children through one open-addressing hash — all invisible
 * behaviourally.  This test drives both implementations with the same
 * randomized operation sequence (mkdirs, file additions through paths
 * and through cached DirRefs, and every query the namenode uses) and
 * requires identical answers at every step.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "dfs/namespace_tree.h"

namespace smartconf::dfs {
namespace {

/** Oracle: the obvious map-of-paths implementation. */
class ReferenceTree
{
  public:
    ReferenceTree() { dirs_["/"] = 0; }

    void makeDirs(const std::string &path)
    {
        std::string prefix;
        std::size_t pos = 1;
        while (pos <= path.size()) {
            const std::size_t next = path.find('/', pos);
            const std::size_t end =
                next == std::string::npos ? path.size() : next;
            prefix = path.substr(0, end);
            dirs_.emplace(prefix, 0);
            pos = end + 1;
        }
    }

    void addFiles(const std::string &path, std::uint64_t count)
    {
        makeDirs(path);
        dirs_[path] += count;
    }

    std::uint64_t filesAt(const std::string &path) const
    {
        const auto it = dirs_.find(path);
        return it != dirs_.end() ? it->second : 0;
    }

    bool exists(const std::string &path) const
    {
        return dirs_.count(path) != 0;
    }

    std::uint64_t filesUnder(const std::string &path) const
    {
        if (!exists(path))
            return 0;
        std::uint64_t total = 0;
        for (const auto &[p, files] : dirs_)
            if (inSubtree(p, path))
                total += files;
        return total;
    }

    std::uint64_t dirsUnder(const std::string &path) const
    {
        if (!exists(path))
            return 0;
        std::uint64_t total = 0;
        for (const auto &[p, files] : dirs_)
            if (inSubtree(p, path))
                ++total;
        return total;
    }

    std::vector<std::string> list(const std::string &path) const
    {
        std::vector<std::string> out;
        if (!exists(path))
            return out;
        const std::string prefix =
            path == "/" ? path : path + "/";
        for (const auto &[p, files] : dirs_) {
            if (p.size() <= prefix.size() ||
                p.compare(0, prefix.size(), prefix) != 0)
                continue;
            if (p.find('/', prefix.size()) != std::string::npos)
                continue; // grandchild
            out.push_back(p.substr(prefix.size()));
        }
        return out; // std::map iteration order: already sorted
    }

  private:
    static bool inSubtree(const std::string &p, const std::string &root)
    {
        if (p == root)
            return true;
        const std::string prefix = root == "/" ? root : root + "/";
        return p.size() > prefix.size() &&
               p.compare(0, prefix.size(), prefix) == 0;
    }

    std::map<std::string, std::uint64_t> dirs_;
};

std::string
randomPath(std::mt19937_64 &gen)
{
    static const char *kSegments[] = {"data",  "logs", "client0",
                                      "client1", "tmp", "a",
                                      "bb",    "ccc",  "shard"};
    std::uniform_int_distribution<int> depth_dist(1, 4);
    std::uniform_int_distribution<std::size_t> seg_dist(
        0, std::size(kSegments) - 1);
    const int depth = depth_dist(gen);
    std::string path;
    for (int d = 0; d < depth; ++d)
        path += std::string("/") + kSegments[seg_dist(gen)];
    return path;
}

TEST(NamespaceTreeDifferential, RandomOpsMatchReferenceModel)
{
    NamespaceTree tree;
    ReferenceTree ref;
    std::mt19937_64 gen(0xd1ff5eed);
    std::uniform_int_distribution<int> op_dist(0, 9);
    std::uniform_int_distribution<std::uint64_t> count_dist(1, 5);

    // Cached handles exercise the DirRef path (the namenode's hot way
    // in) against the same model.
    std::vector<std::pair<NamespaceTree::DirRef, std::string>> refs;

    for (int step = 0; step < 5000; ++step) {
        const std::string path = randomPath(gen);
        switch (op_dist(gen)) {
          case 0:
            tree.makeDirs(path);
            ref.makeDirs(path);
            break;
          case 1:
          case 2: {
            const std::uint64_t c = count_dist(gen);
            tree.addFiles(path, c);
            ref.addFiles(path, c);
            break;
          }
          case 3: {
            refs.emplace_back(tree.dirRef(path), path);
            ref.makeDirs(path); // dirRef creates like mkdirs
            break;
          }
          case 4: {
            if (!refs.empty()) {
                const auto &[handle, p] =
                    refs[step % refs.size()];
                const std::uint64_t c = count_dist(gen);
                tree.addFilesAt(handle, c);
                ref.addFiles(p, c);
            }
            break;
          }
          case 5:
            ASSERT_EQ(tree.filesAt(path), ref.filesAt(path))
                << "filesAt(" << path << ") at step " << step;
            break;
          case 6:
            ASSERT_EQ(tree.filesUnder(path), ref.filesUnder(path))
                << "filesUnder(" << path << ") at step " << step;
            break;
          case 7:
            ASSERT_EQ(tree.dirsUnder(path), ref.dirsUnder(path))
                << "dirsUnder(" << path << ") at step " << step;
            break;
          case 8:
            ASSERT_EQ(tree.exists(path), ref.exists(path))
                << "exists(" << path << ") at step " << step;
            break;
          case 9:
            ASSERT_EQ(tree.list(path), ref.list(path))
                << "list(" << path << ") at step " << step;
            break;
        }
    }

    // Full sweep at the end: every path either model knows about.
    for (const char *probe :
         {"/data", "/data/client0", "/logs", "/tmp/a", "/a/bb/ccc",
          "/shard", "/missing"}) {
        const std::string p(probe);
        EXPECT_EQ(tree.exists(p), ref.exists(p)) << p;
        EXPECT_EQ(tree.filesAt(p), ref.filesAt(p)) << p;
        EXPECT_EQ(tree.filesUnder(p), ref.filesUnder(p)) << p;
        EXPECT_EQ(tree.dirsUnder(p), ref.dirsUnder(p)) << p;
        EXPECT_EQ(tree.list(p), ref.list(p)) << p;
    }
}

TEST(NamespaceTreeDifferential, InterningDedupesRepeatedSegments)
{
    NamespaceTree tree;
    for (int i = 0; i < 100; ++i)
        tree.addFiles("/data/client" + std::to_string(i % 10), 1);
    // "data" plus ten distinct client names, regardless of repetition.
    EXPECT_EQ(tree.internedSegments(), 11u);
}

} // namespace
} // namespace smartconf::dfs
