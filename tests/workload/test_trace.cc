/** @file Tests for operation-trace record and replay. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "kvstore/memtable.h"
#include "sim/shard.h"
#include "workload/trace.h"

namespace smartconf::workload {
namespace {

Op
writeOp(std::uint64_t key, double mb)
{
    Op op;
    op.type = Op::Type::Write;
    op.key = key;
    op.size_mb = mb;
    return op;
}

TEST(Trace, RecordAndReplayRoundTrip)
{
    Trace t;
    t.record(0, {writeOp(1, 1.0), writeOp(2, 2.0)});
    t.record(5, {writeOp(3, 0.5)});
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.horizon(), 5);

    TraceReplayer replay(t);
    EXPECT_EQ(replay.tick(0).size(), 2u);
    EXPECT_TRUE(replay.tick(1).empty());
    const auto at5 = replay.tick(5);
    ASSERT_EQ(at5.size(), 1u);
    EXPECT_EQ(at5[0].key, 3u);
    EXPECT_TRUE(replay.exhausted());
    replay.rewind();
    EXPECT_FALSE(replay.exhausted());
}

TEST(Trace, SerializeParseRoundTrip)
{
    Trace t;
    t.record(3, {writeOp(42, 1.25)});
    Op read;
    read.type = Op::Type::Read;
    read.key = 7;
    read.size_mb = 2.0;
    t.record(10, {read});

    const Trace u = Trace::parse(t.serialize());
    ASSERT_EQ(u.size(), 2u);
    EXPECT_EQ(u.records()[0].tick, 3);
    EXPECT_EQ(u.records()[0].op.type, Op::Type::Write);
    EXPECT_DOUBLE_EQ(u.records()[0].op.size_mb, 1.25);
    EXPECT_EQ(u.records()[1].op.type, Op::Type::Read);
    EXPECT_EQ(u.records()[1].op.key, 7u);
}

TEST(Trace, ParseSkipsCommentsAndBlanks)
{
    const Trace t = Trace::parse(
        "# header\n"
        "\n"
        "1 W 9 0.5\n"
        "   # indented comment\n"
        "2 R 4 1.0\n");
    EXPECT_EQ(t.size(), 2u);
}

TEST(Trace, ParseRejectsMalformedInput)
{
    EXPECT_THROW(Trace::parse("1 W 9\n"), std::runtime_error);
    EXPECT_THROW(Trace::parse("1 X 9 1.0\n"), std::runtime_error);
    EXPECT_THROW(Trace::parse("5 W 1 1.0\n2 W 1 1.0\n"),
                 std::runtime_error);
}

TEST(Trace, CapturesAGeneratorFaithfully)
{
    // Record a YCSB stream, replay it, and verify the replay delivers
    // exactly the recorded operations at the recorded ticks.
    YcsbParams params;
    params.write_fraction = 0.5;
    params.ops_per_tick = 8.0;
    YcsbGenerator gen(params, sim::Rng(44));

    Trace trace;
    std::vector<std::vector<Op>> original;
    for (sim::Tick t = 0; t < 50; ++t) {
        std::vector<Op> ops;
        gen.tickInto(ops);
        trace.record(t, ops);
        original.push_back(std::move(ops));
    }

    TraceReplayer replay(Trace::parse(trace.serialize()));
    for (sim::Tick t = 0; t < 50; ++t) {
        const auto ops = replay.tick(t);
        ASSERT_EQ(ops.size(), original[t].size()) << "tick " << t;
        for (std::size_t i = 0; i < ops.size(); ++i) {
            EXPECT_EQ(ops[i].key, original[t][i].key);
            EXPECT_EQ(ops[i].type, original[t][i].type);
            EXPECT_NEAR(ops[i].size_mb, original[t][i].size_mb, 1e-12);
        }
    }
    EXPECT_TRUE(replay.exhausted());
}

TEST(Trace, ReplaySkipsMissedTicksWithoutDuplicating)
{
    Trace t;
    t.record(1, {writeOp(1, 1.0)});
    t.record(2, {writeOp(2, 1.0)});
    TraceReplayer replay(t);
    // Jumping straight to tick 3 drops older records (they are in the
    // past) rather than delivering them late.
    EXPECT_TRUE(replay.tick(3).empty());
    EXPECT_TRUE(replay.exhausted());
}

TEST(Diurnal, CurveSpansTroughToPeak)
{
    DiurnalCurve curve;
    curve.trough = 0.25;
    curve.period = 240;
    EXPECT_NEAR(curve.at(0), 0.25, 1e-12);
    EXPECT_NEAR(curve.at(120), 1.0, 1e-12);  // mid-period peak
    EXPECT_NEAR(curve.at(240), 0.25, 1e-12); // next day's trough
    for (sim::Tick t = 0; t <= 240; ++t) {
        EXPECT_GE(curve.at(t), 0.25 - 1e-12);
        EXPECT_LE(curve.at(t), 1.0 + 1e-12);
    }
}

TEST(Diurnal, RecordedTraceFollowsTheCurve)
{
    YcsbParams p;
    p.write_fraction = 0.5;
    p.ops_per_tick = 200.0;
    p.burstiness = 0.05; // low noise so the shape is visible
    DiurnalCurve curve;
    curve.trough = 0.2;
    curve.period = 100;

    const Trace trace = recordDiurnal(p, curve, sim::Rng(31), 100);
    ASSERT_GT(trace.size(), 0u);
    // Count ops near the trough (t in [0,10)) vs the peak (t in
    // [45,55)): the peak decade must carry several times the load.
    std::size_t trough_ops = 0, peak_ops = 0;
    for (const auto &r : trace.records()) {
        if (r.tick < 10)
            ++trough_ops;
        else if (r.tick >= 45 && r.tick < 55)
            ++peak_ops;
    }
    EXPECT_GT(peak_ops, trough_ops * 2);
}

TEST(Diurnal, RecordingIsDeterministicAcrossShardWorkerCounts)
{
    YcsbParams p;
    p.write_fraction = 0.5;
    p.ops_per_tick = 300.0;
    p.burstiness = 0.2;
    const DiurnalCurve curve;

    sim::setShardWorkers(1);
    const Trace serial = recordDiurnal(p, curve, sim::Rng(32), 60);
    sim::setShardWorkers(4);
    const Trace forked = recordDiurnal(p, curve, sim::Rng(32), 60);
    sim::setShardWorkers(1);
    EXPECT_EQ(serial.serialize(), forked.serialize());
}

TEST(Diurnal, ReplayDrivesAMemtableScenarioSmoke)
{
    // Scenario smoke: a recorded diurnal day replayed through the
    // CA6059-style plant loop (memtable writes + step).  The replay
    // must feed the plant the exact recorded stream, twice over.
    YcsbParams p;
    p.write_fraction = 0.6;
    p.ops_per_tick = 50.0;
    p.burstiness = 0.2;
    const Trace trace =
        recordDiurnal(p, DiurnalCurve{0.3, 120}, sim::Rng(33), 120);

    auto run_plant = [&trace] {
        kvstore::MemtableParams mp;
        mp.flush_rate_mb_per_tick = 25.0;
        kvstore::Memtable memtable(100.0, mp);
        TraceReplayer replay(trace);
        double latency_sum = 0.0;
        std::uint64_t writes_fed = 0;
        for (sim::Tick t = 0; t < 120; ++t) {
            for (const Op &op : replay.tick(t)) {
                if (op.type != Op::Type::Write)
                    continue;
                latency_sum += memtable.write(op.size_mb, t);
                ++writes_fed;
            }
            memtable.step(t);
        }
        EXPECT_TRUE(replay.exhausted());
        EXPECT_GT(writes_fed, 0u);
        return latency_sum;
    };
    EXPECT_EQ(run_plant(), run_plant()); // pure replay, pure plant
}

} // namespace
} // namespace smartconf::workload
