/** @file Tests for operation-trace record and replay. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/trace.h"

namespace smartconf::workload {
namespace {

Op
writeOp(std::uint64_t key, double mb)
{
    Op op;
    op.type = Op::Type::Write;
    op.key = key;
    op.size_mb = mb;
    return op;
}

TEST(Trace, RecordAndReplayRoundTrip)
{
    Trace t;
    t.record(0, {writeOp(1, 1.0), writeOp(2, 2.0)});
    t.record(5, {writeOp(3, 0.5)});
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.horizon(), 5);

    TraceReplayer replay(t);
    EXPECT_EQ(replay.tick(0).size(), 2u);
    EXPECT_TRUE(replay.tick(1).empty());
    const auto at5 = replay.tick(5);
    ASSERT_EQ(at5.size(), 1u);
    EXPECT_EQ(at5[0].key, 3u);
    EXPECT_TRUE(replay.exhausted());
    replay.rewind();
    EXPECT_FALSE(replay.exhausted());
}

TEST(Trace, SerializeParseRoundTrip)
{
    Trace t;
    t.record(3, {writeOp(42, 1.25)});
    Op read;
    read.type = Op::Type::Read;
    read.key = 7;
    read.size_mb = 2.0;
    t.record(10, {read});

    const Trace u = Trace::parse(t.serialize());
    ASSERT_EQ(u.size(), 2u);
    EXPECT_EQ(u.records()[0].tick, 3);
    EXPECT_EQ(u.records()[0].op.type, Op::Type::Write);
    EXPECT_DOUBLE_EQ(u.records()[0].op.size_mb, 1.25);
    EXPECT_EQ(u.records()[1].op.type, Op::Type::Read);
    EXPECT_EQ(u.records()[1].op.key, 7u);
}

TEST(Trace, ParseSkipsCommentsAndBlanks)
{
    const Trace t = Trace::parse(
        "# header\n"
        "\n"
        "1 W 9 0.5\n"
        "   # indented comment\n"
        "2 R 4 1.0\n");
    EXPECT_EQ(t.size(), 2u);
}

TEST(Trace, ParseRejectsMalformedInput)
{
    EXPECT_THROW(Trace::parse("1 W 9\n"), std::runtime_error);
    EXPECT_THROW(Trace::parse("1 X 9 1.0\n"), std::runtime_error);
    EXPECT_THROW(Trace::parse("5 W 1 1.0\n2 W 1 1.0\n"),
                 std::runtime_error);
}

TEST(Trace, CapturesAGeneratorFaithfully)
{
    // Record a YCSB stream, replay it, and verify the replay delivers
    // exactly the recorded operations at the recorded ticks.
    YcsbParams params;
    params.write_fraction = 0.5;
    params.ops_per_tick = 8.0;
    YcsbGenerator gen(params, sim::Rng(44));

    Trace trace;
    std::vector<std::vector<Op>> original;
    for (sim::Tick t = 0; t < 50; ++t) {
        std::vector<Op> ops;
        gen.tickInto(ops);
        trace.record(t, ops);
        original.push_back(std::move(ops));
    }

    TraceReplayer replay(Trace::parse(trace.serialize()));
    for (sim::Tick t = 0; t < 50; ++t) {
        const auto ops = replay.tick(t);
        ASSERT_EQ(ops.size(), original[t].size()) << "tick " << t;
        for (std::size_t i = 0; i < ops.size(); ++i) {
            EXPECT_EQ(ops[i].key, original[t][i].key);
            EXPECT_EQ(ops[i].type, original[t][i].type);
            EXPECT_NEAR(ops[i].size_mb, original[t][i].size_mb, 1e-12);
        }
    }
    EXPECT_TRUE(replay.exhausted());
}

TEST(Trace, ReplaySkipsMissedTicksWithoutDuplicating)
{
    Trace t;
    t.record(1, {writeOp(1, 1.0)});
    t.record(2, {writeOp(2, 1.0)});
    TraceReplayer replay(t);
    // Jumping straight to tick 3 drops older records (they are in the
    // past) rather than delivering them late.
    EXPECT_TRUE(replay.tick(3).empty());
    EXPECT_TRUE(replay.exhausted());
}

} // namespace
} // namespace smartconf::workload
