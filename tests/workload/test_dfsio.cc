/** @file Unit tests for the TestDFSIO-like generator. */

#include <gtest/gtest.h>

#include <vector>

#include "workload/dfsio.h"

namespace smartconf::workload {
namespace {

TEST(Dfsio, WriteRateApproximatesParameter)
{
    DfsioParams p;
    p.writes_per_tick = 30.0;
    p.du_period = 1000000; // effectively never
    DfsioGenerator gen(p, sim::Rng(1));
    std::uint64_t writes = 0;
    const int ticks = 2000;
    std::vector<DfsRequest> reqs;
    for (int t = 0; t < ticks; ++t) {
        gen.tickInto(t, reqs);
        for (const auto &req : reqs)
            writes += req.type == DfsRequest::Type::WriteFile ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(writes) / ticks, 30.0, 1.5);
}

TEST(Dfsio, DuIssuedPeriodically)
{
    DfsioParams p;
    p.writes_per_tick = 1.0;
    p.du_period = 100;
    p.du_file_count = 5555;
    DfsioGenerator gen(p, sim::Rng(2));
    int dus = 0;
    std::vector<DfsRequest> reqs;
    for (int t = 0; t < 1000; ++t) {
        gen.tickInto(t, reqs);
        for (const auto &req : reqs) {
            if (req.type == DfsRequest::Type::ContentSummary) {
                ++dus;
                EXPECT_EQ(req.file_count, 5555u);
            }
        }
    }
    EXPECT_EQ(dus, 10);
}

TEST(Dfsio, ClientIdsWithinRange)
{
    DfsioParams p;
    p.clients = 4;
    DfsioGenerator gen(p, sim::Rng(3));
    std::vector<DfsRequest> reqs;
    for (int t = 0; t < 200; ++t) {
        gen.tickInto(t, reqs);
        for (const auto &req : reqs) {
            if (req.type == DfsRequest::Type::WriteFile)
                EXPECT_LT(req.client, 4u);
        }
    }
}

TEST(Dfsio, FirstTickIssuesDu)
{
    DfsioParams p;
    p.du_period = 500;
    DfsioGenerator gen(p, sim::Rng(4));
    bool found = false;
    std::vector<DfsRequest> reqs;
    gen.tickInto(0, reqs);
    for (const auto &req : reqs)
        found |= req.type == DfsRequest::Type::ContentSummary;
    EXPECT_TRUE(found);
}

} // namespace
} // namespace smartconf::workload
