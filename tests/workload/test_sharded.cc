/** @file Unit tests for the shard-split workload generators. */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "workload/sharded.h"

namespace smartconf::workload {
namespace {

YcsbParams
ycsbParams(double write_frac, double rate = 400.0)
{
    YcsbParams p;
    p.write_fraction = write_frac;
    p.request_size_mb = 1.0;
    p.ops_per_tick = rate;
    p.burstiness = 0.2;
    return p;
}

DfsioParams
dfsioParams(std::uint64_t clients = 6)
{
    DfsioParams p;
    p.clients = clients;
    p.writes_per_tick = 300.0;
    p.burstiness = 0.25;
    p.du_period = 10;
    p.du_file_count = 1000;
    return p;
}

bool
opsEqual(const std::vector<Op> &a, const std::vector<Op> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].type != b[i].type || a[i].key != b[i].key ||
            a[i].size_mb != b[i].size_mb)
            return false;
    return true;
}

TEST(ShardedYcsb, ByteIdenticalAcrossShardWorkerCounts)
{
    // The tentpole contract: the generated stream is a pure function
    // of the logical 16-shard layout, so running the blocks serially
    // or forked across 4 workers produces the same bytes.
    std::vector<std::vector<Op>> streams[2];
    const std::size_t workers[2] = {1, 4};
    for (int w = 0; w < 2; ++w) {
        sim::setShardWorkers(workers[w]);
        ShardedYcsbGenerator gen(ycsbParams(0.5), sim::Rng(11));
        for (int t = 0; t < 50; ++t) {
            std::vector<Op> ops;
            gen.tickInto(ops);
            streams[w].push_back(std::move(ops));
        }
    }
    sim::setShardWorkers(1);
    ASSERT_EQ(streams[0].size(), streams[1].size());
    for (std::size_t t = 0; t < streams[0].size(); ++t) {
        SCOPED_TRACE("tick " + std::to_string(t));
        EXPECT_TRUE(opsEqual(streams[0][t], streams[1][t]));
    }
}

TEST(ShardedYcsb, ShardCountersSumToGenerated)
{
    ShardedYcsbGenerator gen(ycsbParams(0.5), sim::Rng(12));
    std::vector<Op> ops;
    for (int t = 0; t < 100; ++t)
        gen.tickInto(ops);
    std::uint64_t sum = 0;
    for (const std::uint64_t v : gen.shardOps())
        sum += v;
    EXPECT_EQ(sum, gen.generated());
    EXPECT_GT(gen.generated(), 0u);
    // A 400-op tick splits into 13 rotating blocks; over 100 ticks
    // every lane must have produced something.
    for (const std::uint64_t v : gen.shardOps())
        EXPECT_GT(v, 0u);
}

TEST(ShardedYcsb, HonoursWriteFractionAndMutators)
{
    ShardedYcsbGenerator gen(ycsbParams(1.0), sim::Rng(13));
    std::vector<Op> ops;
    gen.tickInto(ops);
    ASSERT_FALSE(ops.empty());
    for (const Op &op : ops)
        EXPECT_EQ(op.type, Op::Type::Write);

    gen.setWriteFraction(0.0);
    gen.tickInto(ops);
    ASSERT_FALSE(ops.empty());
    for (const Op &op : ops)
        EXPECT_EQ(op.type, Op::Type::Read);
}

TEST(ShardedYcsb, LastSeqAdvancesPerTick)
{
    ShardedYcsbGenerator gen(ycsbParams(0.5), sim::Rng(14));
    std::vector<Op> ops;
    gen.tickInto(ops);
    EXPECT_EQ(gen.lastSeq(), 0u);
    gen.tickInto(ops);
    EXPECT_EQ(gen.lastSeq(), 1u);
}

TEST(ShardedDfsio, ByteIdenticalAcrossShardWorkerCounts)
{
    std::vector<std::vector<DfsRequest>> streams[2];
    const std::size_t workers[2] = {1, 4};
    for (int w = 0; w < 2; ++w) {
        sim::setShardWorkers(workers[w]);
        ShardedDfsioGenerator gen(dfsioParams(), sim::Rng(21));
        for (sim::Tick t = 0; t < 50; ++t) {
            std::vector<DfsRequest> reqs;
            gen.tickInto(t, reqs);
            streams[w].push_back(std::move(reqs));
        }
    }
    sim::setShardWorkers(1);
    ASSERT_EQ(streams[0].size(), streams[1].size());
    for (std::size_t t = 0; t < streams[0].size(); ++t) {
        SCOPED_TRACE("tick " + std::to_string(t));
        const auto &a = streams[0][t];
        const auto &b = streams[1][t];
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].type, b[i].type);
            EXPECT_EQ(a[i].client, b[i].client);
            EXPECT_EQ(a[i].file_count, b[i].file_count);
        }
    }
}

TEST(ShardedDfsio, EmitsPeriodicDuAndCountsIt)
{
    ShardedDfsioGenerator gen(dfsioParams(5), sim::Rng(22));
    std::vector<DfsRequest> reqs;
    std::uint64_t du_count = 0;
    for (sim::Tick t = 0; t < 100; ++t) {
        gen.tickInto(t, reqs);
        for (const DfsRequest &r : reqs) {
            if (r.type == DfsRequest::Type::ContentSummary)
                ++du_count;
            else
                EXPECT_LT(r.client, 5u);
        }
    }
    EXPECT_EQ(du_count, 10u); // du_period 10 over 100 ticks
    std::uint64_t sum = 0;
    for (const std::uint64_t v : gen.shardOps())
        sum += v;
    EXPECT_EQ(sum, gen.generated());
}

} // namespace
} // namespace smartconf::workload
