/** @file Unit tests for the WordCount job descriptor. */

#include <gtest/gtest.h>

#include "workload/wordcount.h"

namespace smartconf::workload {
namespace {

TEST(WordCount, MapTaskCountCeils)
{
    WordCountJob j{2048.0, 64.0, 1, 1.0};
    EXPECT_EQ(j.mapTaskCount(), 32u);
    WordCountJob k{650.0, 64.0, 1, 1.0};
    EXPECT_EQ(k.mapTaskCount(), 11u) << "partial split gets a task";
}

TEST(WordCount, Table6Jobs)
{
    // Profiling job: WordCount(2G, 64MB, 1).
    WordCountJob prof{2048.0, 64.0, 1, 1.0};
    EXPECT_EQ(prof.mapTaskCount(), 32u);
    // Phase 1: (640MB, 64MB, 2); phase 2: (640MB, 128MB, 2).
    WordCountJob p1{640.0, 64.0, 2, 1.0};
    WordCountJob p2{640.0, 128.0, 2, 1.0};
    EXPECT_EQ(p1.mapTaskCount(), 10u);
    EXPECT_EQ(p2.mapTaskCount(), 5u);
    EXPECT_DOUBLE_EQ(p2.spillPerTaskMb(), 128.0);
}

TEST(WordCount, SpillScalesWithRatio)
{
    WordCountJob j{640.0, 64.0, 2, 0.5};
    EXPECT_DOUBLE_EQ(j.spillPerTaskMb(), 32.0);
}

TEST(WordCount, DegenerateSplit)
{
    WordCountJob j{640.0, 0.0, 1, 1.0};
    EXPECT_EQ(j.mapTaskCount(), 0u);
}

} // namespace
} // namespace smartconf::workload
