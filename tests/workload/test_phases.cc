/** @file Unit tests for phase scheduling. */

#include <gtest/gtest.h>

#include "workload/phases.h"

namespace smartconf::workload {
namespace {

TEST(Phases, SinglePhaseAlwaysActive)
{
    PhasedSchedule<int> s(7);
    EXPECT_EQ(s.at(0), 7);
    EXPECT_EQ(s.at(1000000), 7);
    EXPECT_EQ(s.phaseCount(), 1u);
}

TEST(Phases, TwoPhaseSwitch)
{
    PhasedSchedule<double> s(1.0);
    s.addPhase(2000, 2.0); // HB3813: request size doubles at 200 s
    EXPECT_DOUBLE_EQ(s.at(0), 1.0);
    EXPECT_DOUBLE_EQ(s.at(1999), 1.0);
    EXPECT_DOUBLE_EQ(s.at(2000), 2.0);
    EXPECT_DOUBLE_EQ(s.at(7000), 2.0);
}

TEST(Phases, PhaseIndexAndBoundary)
{
    PhasedSchedule<int> s(0);
    s.addPhase(100, 1);
    s.addPhase(200, 2);
    EXPECT_EQ(s.phaseIndex(50), 0u);
    EXPECT_EQ(s.phaseIndex(150), 1u);
    EXPECT_EQ(s.phaseIndex(500), 2u);
    EXPECT_TRUE(s.boundaryAt(100));
    EXPECT_TRUE(s.boundaryAt(200));
    EXPECT_FALSE(s.boundaryAt(150));
    EXPECT_FALSE(s.boundaryAt(0));
}

TEST(Phases, PhaseStart)
{
    PhasedSchedule<int> s(0);
    s.addPhase(123, 1);
    EXPECT_EQ(s.phaseStart(0), 0);
    EXPECT_EQ(s.phaseStart(1), 123);
}

TEST(Phases, StructuredParams)
{
    struct P
    {
        double rate;
        double size;
    };
    PhasedSchedule<P> s({10.0, 1.0});
    s.addPhase(50, {20.0, 2.0});
    EXPECT_DOUBLE_EQ(s.at(49).rate, 10.0);
    EXPECT_DOUBLE_EQ(s.at(50).size, 2.0);
}

} // namespace
} // namespace smartconf::workload
