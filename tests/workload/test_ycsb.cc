/** @file Unit tests for the YCSB-like workload generator. */

#include <gtest/gtest.h>

#include <vector>

#include "workload/ycsb.h"

namespace smartconf::workload {
namespace {

YcsbParams
params(double write_frac, double size_mb = 1.0, double rate = 20.0)
{
    YcsbParams p;
    p.write_fraction = write_frac;
    p.request_size_mb = size_mb;
    p.ops_per_tick = rate;
    p.burstiness = 0.2;
    return p;
}

TEST(Ycsb, WriteFractionApproximatelyHonoured)
{
    YcsbGenerator gen(params(0.5), sim::Rng(1));
    std::uint64_t writes = 0, total = 0;
    std::vector<Op> ops;
    for (int t = 0; t < 1000; ++t) {
        gen.tickInto(ops);
        for (const auto &op : ops) {
            ++total;
            writes += op.type == Op::Type::Write ? 1 : 0;
        }
    }
    EXPECT_GT(total, 10000u);
    EXPECT_NEAR(static_cast<double>(writes) / total, 0.5, 0.03);
}

TEST(Ycsb, AllWritesWhenFractionOne)
{
    YcsbGenerator gen(params(1.0), sim::Rng(2));
    std::vector<Op> ops;
    for (int t = 0; t < 100; ++t) {
        gen.tickInto(ops);
        for (const auto &op : ops)
            EXPECT_EQ(op.type, Op::Type::Write);
    }
}

TEST(Ycsb, AllReadsWhenFractionZero)
{
    YcsbGenerator gen(params(0.0), sim::Rng(3));
    std::vector<Op> ops;
    for (int t = 0; t < 100; ++t) {
        gen.tickInto(ops);
        for (const auto &op : ops)
            EXPECT_EQ(op.type, Op::Type::Read);
    }
}

TEST(Ycsb, MeanRequestSizeTracksParameter)
{
    YcsbGenerator gen(params(1.0, 2.0), sim::Rng(4));
    double acc = 0.0;
    std::uint64_t n = 0;
    std::vector<Op> ops;
    for (int t = 0; t < 500; ++t) {
        gen.tickInto(ops);
        for (const auto &op : ops) {
            acc += op.size_mb;
            ++n;
        }
    }
    EXPECT_NEAR(acc / static_cast<double>(n), 2.0, 0.1);
}

TEST(Ycsb, MeanRateTracksParameter)
{
    YcsbGenerator gen(params(0.5, 1.0, 12.0), sim::Rng(5));
    std::uint64_t total = 0;
    const int ticks = 2000;
    std::vector<Op> ops;
    for (int t = 0; t < ticks; ++t) {
        gen.tickInto(ops);
        total += ops.size();
    }
    EXPECT_NEAR(static_cast<double>(total) / ticks, 12.0, 0.5);
    EXPECT_EQ(gen.generated(), total);
}

TEST(Ycsb, KeysAreZipfianSkewed)
{
    YcsbParams p = params(0.0);
    p.key_count = 1000;
    YcsbGenerator gen(p, sim::Rng(6));
    std::uint64_t head = 0, total = 0;
    std::vector<Op> ops;
    for (int t = 0; t < 2000; ++t) {
        gen.tickInto(ops);
        for (const auto &op : ops) {
            ++total;
            head += op.key < 10 ? 1 : 0;
        }
    }
    // Under theta=0.99 the 1% hottest keys draw far more than 1%.
    EXPECT_GT(static_cast<double>(head) / total, 0.2);
}

TEST(Ycsb, SetParamsSwitchesMidStream)
{
    YcsbGenerator gen(params(1.0, 1.0), sim::Rng(7));
    std::vector<Op> ops;
    gen.tickInto(ops);
    auto p = gen.params();
    p.request_size_mb = 2.0; // HB3813's phase-2 shift
    gen.setParams(p);
    double acc = 0.0;
    std::uint64_t n = 0;
    for (int t = 0; t < 300; ++t) {
        gen.tickInto(ops);
        for (const auto &op : ops) {
            acc += op.size_mb;
            ++n;
        }
    }
    EXPECT_NEAR(acc / static_cast<double>(n), 2.0, 0.1);
}

TEST(Ycsb, DeterministicAcrossIdenticalRuns)
{
    YcsbGenerator a(params(0.5), sim::Rng(8));
    YcsbGenerator b(params(0.5), sim::Rng(8));
    std::vector<Op> oa, ob;
    for (int t = 0; t < 50; ++t) {
        a.tickInto(oa);
        b.tickInto(ob);
        ASSERT_EQ(oa.size(), ob.size());
        for (std::size_t i = 0; i < oa.size(); ++i) {
            EXPECT_EQ(oa[i].key, ob[i].key);
            EXPECT_DOUBLE_EQ(oa[i].size_mb, ob[i].size_mb);
        }
    }
}

} // namespace
} // namespace smartconf::workload
