# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/kvstore_tests[1]_include.cmake")
include("/root/repo/build/tests/dfs_tests[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_tests[1]_include.cmake")
include("/root/repo/build/tests/study_tests[1]_include.cmake")
include("/root/repo/build/tests/scenario_tests[1]_include.cmake")
