file(REMOVE_RECURSE
  "CMakeFiles/scenario_tests.dir/scenarios/test_ablations.cc.o"
  "CMakeFiles/scenario_tests.dir/scenarios/test_ablations.cc.o.d"
  "CMakeFiles/scenario_tests.dir/scenarios/test_behaviour_details.cc.o"
  "CMakeFiles/scenario_tests.dir/scenarios/test_behaviour_details.cc.o.d"
  "CMakeFiles/scenario_tests.dir/scenarios/test_integration.cc.o"
  "CMakeFiles/scenario_tests.dir/scenarios/test_integration.cc.o.d"
  "CMakeFiles/scenario_tests.dir/scenarios/test_longrun.cc.o"
  "CMakeFiles/scenario_tests.dir/scenarios/test_longrun.cc.o.d"
  "CMakeFiles/scenario_tests.dir/scenarios/test_policies.cc.o"
  "CMakeFiles/scenario_tests.dir/scenarios/test_policies.cc.o.d"
  "CMakeFiles/scenario_tests.dir/scenarios/test_profiles.cc.o"
  "CMakeFiles/scenario_tests.dir/scenarios/test_profiles.cc.o.d"
  "CMakeFiles/scenario_tests.dir/scenarios/test_robustness.cc.o"
  "CMakeFiles/scenario_tests.dir/scenarios/test_robustness.cc.o.d"
  "CMakeFiles/scenario_tests.dir/scenarios/test_runs.cc.o"
  "CMakeFiles/scenario_tests.dir/scenarios/test_runs.cc.o.d"
  "scenario_tests"
  "scenario_tests.pdb"
  "scenario_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
