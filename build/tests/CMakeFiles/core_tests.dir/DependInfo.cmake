
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_controller.cc" "tests/CMakeFiles/core_tests.dir/core/test_controller.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_controller.cc.o.d"
  "/root/repo/tests/core/test_controller_properties.cc" "tests/CMakeFiles/core_tests.dir/core/test_controller_properties.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_controller_properties.cc.o.d"
  "/root/repo/tests/core/test_coordinator.cc" "tests/CMakeFiles/core_tests.dir/core/test_coordinator.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_coordinator.cc.o.d"
  "/root/repo/tests/core/test_goal.cc" "tests/CMakeFiles/core_tests.dir/core/test_goal.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_goal.cc.o.d"
  "/root/repo/tests/core/test_lint.cc" "tests/CMakeFiles/core_tests.dir/core/test_lint.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_lint.cc.o.d"
  "/root/repo/tests/core/test_lower_bound_goals.cc" "tests/CMakeFiles/core_tests.dir/core/test_lower_bound_goals.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_lower_bound_goals.cc.o.d"
  "/root/repo/tests/core/test_model.cc" "tests/CMakeFiles/core_tests.dir/core/test_model.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_model.cc.o.d"
  "/root/repo/tests/core/test_pole.cc" "tests/CMakeFiles/core_tests.dir/core/test_pole.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_pole.cc.o.d"
  "/root/repo/tests/core/test_profile_store.cc" "tests/CMakeFiles/core_tests.dir/core/test_profile_store.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_profile_store.cc.o.d"
  "/root/repo/tests/core/test_profiler.cc" "tests/CMakeFiles/core_tests.dir/core/test_profiler.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_profiler.cc.o.d"
  "/root/repo/tests/core/test_runtime.cc" "tests/CMakeFiles/core_tests.dir/core/test_runtime.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_runtime.cc.o.d"
  "/root/repo/tests/core/test_sensor.cc" "tests/CMakeFiles/core_tests.dir/core/test_sensor.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_sensor.cc.o.d"
  "/root/repo/tests/core/test_smartconf_api.cc" "tests/CMakeFiles/core_tests.dir/core/test_smartconf_api.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_smartconf_api.cc.o.d"
  "/root/repo/tests/core/test_stats.cc" "tests/CMakeFiles/core_tests.dir/core/test_stats.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_stats.cc.o.d"
  "/root/repo/tests/core/test_sysfile.cc" "tests/CMakeFiles/core_tests.dir/core/test_sysfile.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_sysfile.cc.o.d"
  "/root/repo/tests/core/test_sysfile_fuzz.cc" "tests/CMakeFiles/core_tests.dir/core/test_sysfile_fuzz.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_sysfile_fuzz.cc.o.d"
  "/root/repo/tests/core/test_transducer.cc" "tests/CMakeFiles/core_tests.dir/core/test_transducer.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_transducer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/smartconf_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/study/CMakeFiles/smartconf_study.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smartconf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/smartconf_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/smartconf_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/smartconf_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smartconf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smartconf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
