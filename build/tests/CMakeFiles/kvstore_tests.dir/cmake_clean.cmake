file(REMOVE_RECURSE
  "CMakeFiles/kvstore_tests.dir/kvstore/test_heap.cc.o"
  "CMakeFiles/kvstore_tests.dir/kvstore/test_heap.cc.o.d"
  "CMakeFiles/kvstore_tests.dir/kvstore/test_memstore.cc.o"
  "CMakeFiles/kvstore_tests.dir/kvstore/test_memstore.cc.o.d"
  "CMakeFiles/kvstore_tests.dir/kvstore/test_memtable.cc.o"
  "CMakeFiles/kvstore_tests.dir/kvstore/test_memtable.cc.o.d"
  "CMakeFiles/kvstore_tests.dir/kvstore/test_rpc_queue.cc.o"
  "CMakeFiles/kvstore_tests.dir/kvstore/test_rpc_queue.cc.o.d"
  "CMakeFiles/kvstore_tests.dir/kvstore/test_server.cc.o"
  "CMakeFiles/kvstore_tests.dir/kvstore/test_server.cc.o.d"
  "kvstore_tests"
  "kvstore_tests.pdb"
  "kvstore_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
