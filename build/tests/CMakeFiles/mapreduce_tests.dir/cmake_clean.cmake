file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_tests.dir/mapreduce/test_cluster.cc.o"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/test_cluster.cc.o.d"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/test_distcp.cc.o"
  "CMakeFiles/mapreduce_tests.dir/mapreduce/test_distcp.cc.o.d"
  "mapreduce_tests"
  "mapreduce_tests.pdb"
  "mapreduce_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
