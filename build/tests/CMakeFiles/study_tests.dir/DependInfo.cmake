
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/study/test_dataset.cc" "tests/CMakeFiles/study_tests.dir/study/test_dataset.cc.o" "gcc" "tests/CMakeFiles/study_tests.dir/study/test_dataset.cc.o.d"
  "/root/repo/tests/study/test_tables.cc" "tests/CMakeFiles/study_tests.dir/study/test_tables.cc.o" "gcc" "tests/CMakeFiles/study_tests.dir/study/test_tables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/smartconf_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/study/CMakeFiles/smartconf_study.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smartconf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/smartconf_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/smartconf_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/smartconf_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smartconf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smartconf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
