file(REMOVE_RECURSE
  "CMakeFiles/dfs_tests.dir/dfs/test_namenode.cc.o"
  "CMakeFiles/dfs_tests.dir/dfs/test_namenode.cc.o.d"
  "CMakeFiles/dfs_tests.dir/dfs/test_namespace_tree.cc.o"
  "CMakeFiles/dfs_tests.dir/dfs/test_namespace_tree.cc.o.d"
  "dfs_tests"
  "dfs_tests.pdb"
  "dfs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
