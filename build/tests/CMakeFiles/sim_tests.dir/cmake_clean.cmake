file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/test_clock.cc.o"
  "CMakeFiles/sim_tests.dir/sim/test_clock.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_event_queue.cc.o"
  "CMakeFiles/sim_tests.dir/sim/test_event_queue.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_event_queue_stress.cc.o"
  "CMakeFiles/sim_tests.dir/sim/test_event_queue_stress.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_metrics.cc.o"
  "CMakeFiles/sim_tests.dir/sim/test_metrics.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_rng.cc.o"
  "CMakeFiles/sim_tests.dir/sim/test_rng.cc.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
