file(REMOVE_RECURSE
  "CMakeFiles/workload_tests.dir/workload/test_dfsio.cc.o"
  "CMakeFiles/workload_tests.dir/workload/test_dfsio.cc.o.d"
  "CMakeFiles/workload_tests.dir/workload/test_phases.cc.o"
  "CMakeFiles/workload_tests.dir/workload/test_phases.cc.o.d"
  "CMakeFiles/workload_tests.dir/workload/test_trace.cc.o"
  "CMakeFiles/workload_tests.dir/workload/test_trace.cc.o.d"
  "CMakeFiles/workload_tests.dir/workload/test_wordcount.cc.o"
  "CMakeFiles/workload_tests.dir/workload/test_wordcount.cc.o.d"
  "CMakeFiles/workload_tests.dir/workload/test_ycsb.cc.o"
  "CMakeFiles/workload_tests.dir/workload/test_ycsb.cc.o.d"
  "workload_tests"
  "workload_tests.pdb"
  "workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
