file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_controller.dir/bench/bench_micro_controller.cc.o"
  "CMakeFiles/bench_micro_controller.dir/bench/bench_micro_controller.cc.o.d"
  "bench/bench_micro_controller"
  "bench/bench_micro_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
