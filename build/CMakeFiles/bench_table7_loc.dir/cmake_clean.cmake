file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_loc.dir/bench/bench_table7_loc.cc.o"
  "CMakeFiles/bench_table7_loc.dir/bench/bench_table7_loc.cc.o.d"
  "bench/bench_table7_loc"
  "bench/bench_table7_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
