file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_profiling.dir/bench/bench_ablation_profiling.cc.o"
  "CMakeFiles/bench_ablation_profiling.dir/bench/bench_ablation_profiling.cc.o.d"
  "bench/bench_ablation_profiling"
  "bench/bench_ablation_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
