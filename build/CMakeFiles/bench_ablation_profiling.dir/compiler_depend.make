# Empty compiler generated dependencies file for bench_ablation_profiling.
# This may be replaced when dependencies are built.
