file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hb3813.dir/bench/bench_fig6_hb3813.cc.o"
  "CMakeFiles/bench_fig6_hb3813.dir/bench/bench_fig6_hb3813.cc.o.d"
  "bench/bench_fig6_hb3813"
  "bench/bench_fig6_hb3813.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hb3813.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
