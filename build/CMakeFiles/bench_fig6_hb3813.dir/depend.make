# Empty dependencies file for bench_fig6_hb3813.
# This may be replaced when dependencies are built.
