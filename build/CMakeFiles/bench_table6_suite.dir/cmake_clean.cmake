file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_suite.dir/bench/bench_table6_suite.cc.o"
  "CMakeFiles/bench_table6_suite.dir/bench/bench_table6_suite.cc.o.d"
  "bench/bench_table6_suite"
  "bench/bench_table6_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
