file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_period.dir/bench/bench_ablation_period.cc.o"
  "CMakeFiles/bench_ablation_period.dir/bench/bench_ablation_period.cc.o.d"
  "bench/bench_ablation_period"
  "bench/bench_ablation_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
