file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_interacting.dir/bench/bench_fig8_interacting.cc.o"
  "CMakeFiles/bench_fig8_interacting.dir/bench/bench_fig8_interacting.cc.o.d"
  "bench/bench_fig8_interacting"
  "bench/bench_fig8_interacting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_interacting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
