# Empty compiler generated dependencies file for bench_table2_5_study.
# This may be replaced when dependencies are built.
