# Empty dependencies file for bench_limitations.
# This may be replaced when dependencies are built.
