# Empty dependencies file for mapreduce_diskguard.
# This may be replaced when dependencies are built.
