file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_diskguard.dir/mapreduce_diskguard.cpp.o"
  "CMakeFiles/mapreduce_diskguard.dir/mapreduce_diskguard.cpp.o.d"
  "mapreduce_diskguard"
  "mapreduce_diskguard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_diskguard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
