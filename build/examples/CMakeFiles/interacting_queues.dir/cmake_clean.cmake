file(REMOVE_RECURSE
  "CMakeFiles/interacting_queues.dir/interacting_queues.cpp.o"
  "CMakeFiles/interacting_queues.dir/interacting_queues.cpp.o.d"
  "interacting_queues"
  "interacting_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interacting_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
