# Empty dependencies file for interacting_queues.
# This may be replaced when dependencies are built.
