# Empty dependencies file for kvstore_autotune.
# This may be replaced when dependencies are built.
