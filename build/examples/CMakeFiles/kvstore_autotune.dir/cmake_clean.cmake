file(REMOVE_RECURSE
  "CMakeFiles/kvstore_autotune.dir/kvstore_autotune.cpp.o"
  "CMakeFiles/kvstore_autotune.dir/kvstore_autotune.cpp.o.d"
  "kvstore_autotune"
  "kvstore_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
