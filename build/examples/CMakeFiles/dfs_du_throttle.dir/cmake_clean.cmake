file(REMOVE_RECURSE
  "CMakeFiles/dfs_du_throttle.dir/dfs_du_throttle.cpp.o"
  "CMakeFiles/dfs_du_throttle.dir/dfs_du_throttle.cpp.o.d"
  "dfs_du_throttle"
  "dfs_du_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_du_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
