# Empty dependencies file for dfs_du_throttle.
# This may be replaced when dependencies are built.
