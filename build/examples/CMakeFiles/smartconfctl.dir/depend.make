# Empty dependencies file for smartconfctl.
# This may be replaced when dependencies are built.
