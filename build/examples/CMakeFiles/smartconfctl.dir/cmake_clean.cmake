file(REMOVE_RECURSE
  "CMakeFiles/smartconfctl.dir/smartconfctl.cpp.o"
  "CMakeFiles/smartconfctl.dir/smartconfctl.cpp.o.d"
  "smartconfctl"
  "smartconfctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartconfctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
