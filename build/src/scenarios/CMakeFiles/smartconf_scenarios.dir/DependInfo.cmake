
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scenarios/ca6059.cc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/ca6059.cc.o" "gcc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/ca6059.cc.o.d"
  "/root/repo/src/scenarios/control.cc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/control.cc.o" "gcc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/control.cc.o.d"
  "/root/repo/src/scenarios/hb2149.cc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/hb2149.cc.o" "gcc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/hb2149.cc.o.d"
  "/root/repo/src/scenarios/hb3813.cc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/hb3813.cc.o" "gcc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/hb3813.cc.o.d"
  "/root/repo/src/scenarios/hb6728.cc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/hb6728.cc.o" "gcc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/hb6728.cc.o.d"
  "/root/repo/src/scenarios/hd4995.cc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/hd4995.cc.o" "gcc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/hd4995.cc.o.d"
  "/root/repo/src/scenarios/mr2820.cc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/mr2820.cc.o" "gcc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/mr2820.cc.o.d"
  "/root/repo/src/scenarios/scenario.cc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/scenario.cc.o" "gcc" "src/scenarios/CMakeFiles/smartconf_scenarios.dir/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/smartconf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/smartconf_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/smartconf_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/smartconf_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smartconf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smartconf_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
