file(REMOVE_RECURSE
  "CMakeFiles/smartconf_scenarios.dir/ca6059.cc.o"
  "CMakeFiles/smartconf_scenarios.dir/ca6059.cc.o.d"
  "CMakeFiles/smartconf_scenarios.dir/control.cc.o"
  "CMakeFiles/smartconf_scenarios.dir/control.cc.o.d"
  "CMakeFiles/smartconf_scenarios.dir/hb2149.cc.o"
  "CMakeFiles/smartconf_scenarios.dir/hb2149.cc.o.d"
  "CMakeFiles/smartconf_scenarios.dir/hb3813.cc.o"
  "CMakeFiles/smartconf_scenarios.dir/hb3813.cc.o.d"
  "CMakeFiles/smartconf_scenarios.dir/hb6728.cc.o"
  "CMakeFiles/smartconf_scenarios.dir/hb6728.cc.o.d"
  "CMakeFiles/smartconf_scenarios.dir/hd4995.cc.o"
  "CMakeFiles/smartconf_scenarios.dir/hd4995.cc.o.d"
  "CMakeFiles/smartconf_scenarios.dir/mr2820.cc.o"
  "CMakeFiles/smartconf_scenarios.dir/mr2820.cc.o.d"
  "CMakeFiles/smartconf_scenarios.dir/scenario.cc.o"
  "CMakeFiles/smartconf_scenarios.dir/scenario.cc.o.d"
  "libsmartconf_scenarios.a"
  "libsmartconf_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartconf_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
