file(REMOVE_RECURSE
  "libsmartconf_scenarios.a"
)
