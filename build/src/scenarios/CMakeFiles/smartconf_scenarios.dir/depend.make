# Empty dependencies file for smartconf_scenarios.
# This may be replaced when dependencies are built.
