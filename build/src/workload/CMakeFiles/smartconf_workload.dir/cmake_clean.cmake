file(REMOVE_RECURSE
  "CMakeFiles/smartconf_workload.dir/dfsio.cc.o"
  "CMakeFiles/smartconf_workload.dir/dfsio.cc.o.d"
  "CMakeFiles/smartconf_workload.dir/trace.cc.o"
  "CMakeFiles/smartconf_workload.dir/trace.cc.o.d"
  "CMakeFiles/smartconf_workload.dir/ycsb.cc.o"
  "CMakeFiles/smartconf_workload.dir/ycsb.cc.o.d"
  "libsmartconf_workload.a"
  "libsmartconf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartconf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
