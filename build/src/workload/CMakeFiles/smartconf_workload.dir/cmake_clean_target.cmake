file(REMOVE_RECURSE
  "libsmartconf_workload.a"
)
