# Empty compiler generated dependencies file for smartconf_workload.
# This may be replaced when dependencies are built.
