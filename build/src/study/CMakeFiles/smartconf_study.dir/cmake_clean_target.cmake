file(REMOVE_RECURSE
  "libsmartconf_study.a"
)
