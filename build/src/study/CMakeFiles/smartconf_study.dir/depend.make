# Empty dependencies file for smartconf_study.
# This may be replaced when dependencies are built.
