file(REMOVE_RECURSE
  "CMakeFiles/smartconf_study.dir/dataset.cc.o"
  "CMakeFiles/smartconf_study.dir/dataset.cc.o.d"
  "CMakeFiles/smartconf_study.dir/tables.cc.o"
  "CMakeFiles/smartconf_study.dir/tables.cc.o.d"
  "libsmartconf_study.a"
  "libsmartconf_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartconf_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
