# Empty dependencies file for smartconf_kvstore.
# This may be replaced when dependencies are built.
