
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/heap.cc" "src/kvstore/CMakeFiles/smartconf_kvstore.dir/heap.cc.o" "gcc" "src/kvstore/CMakeFiles/smartconf_kvstore.dir/heap.cc.o.d"
  "/root/repo/src/kvstore/memstore.cc" "src/kvstore/CMakeFiles/smartconf_kvstore.dir/memstore.cc.o" "gcc" "src/kvstore/CMakeFiles/smartconf_kvstore.dir/memstore.cc.o.d"
  "/root/repo/src/kvstore/memtable.cc" "src/kvstore/CMakeFiles/smartconf_kvstore.dir/memtable.cc.o" "gcc" "src/kvstore/CMakeFiles/smartconf_kvstore.dir/memtable.cc.o.d"
  "/root/repo/src/kvstore/rpc_queue.cc" "src/kvstore/CMakeFiles/smartconf_kvstore.dir/rpc_queue.cc.o" "gcc" "src/kvstore/CMakeFiles/smartconf_kvstore.dir/rpc_queue.cc.o.d"
  "/root/repo/src/kvstore/server.cc" "src/kvstore/CMakeFiles/smartconf_kvstore.dir/server.cc.o" "gcc" "src/kvstore/CMakeFiles/smartconf_kvstore.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/smartconf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smartconf_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
