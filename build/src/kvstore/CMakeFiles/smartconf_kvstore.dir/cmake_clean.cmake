file(REMOVE_RECURSE
  "CMakeFiles/smartconf_kvstore.dir/heap.cc.o"
  "CMakeFiles/smartconf_kvstore.dir/heap.cc.o.d"
  "CMakeFiles/smartconf_kvstore.dir/memstore.cc.o"
  "CMakeFiles/smartconf_kvstore.dir/memstore.cc.o.d"
  "CMakeFiles/smartconf_kvstore.dir/memtable.cc.o"
  "CMakeFiles/smartconf_kvstore.dir/memtable.cc.o.d"
  "CMakeFiles/smartconf_kvstore.dir/rpc_queue.cc.o"
  "CMakeFiles/smartconf_kvstore.dir/rpc_queue.cc.o.d"
  "CMakeFiles/smartconf_kvstore.dir/server.cc.o"
  "CMakeFiles/smartconf_kvstore.dir/server.cc.o.d"
  "libsmartconf_kvstore.a"
  "libsmartconf_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartconf_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
