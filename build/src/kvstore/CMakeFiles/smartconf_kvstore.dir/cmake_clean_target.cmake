file(REMOVE_RECURSE
  "libsmartconf_kvstore.a"
)
