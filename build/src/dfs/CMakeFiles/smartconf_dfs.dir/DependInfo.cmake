
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/namenode.cc" "src/dfs/CMakeFiles/smartconf_dfs.dir/namenode.cc.o" "gcc" "src/dfs/CMakeFiles/smartconf_dfs.dir/namenode.cc.o.d"
  "/root/repo/src/dfs/namespace_tree.cc" "src/dfs/CMakeFiles/smartconf_dfs.dir/namespace_tree.cc.o" "gcc" "src/dfs/CMakeFiles/smartconf_dfs.dir/namespace_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/smartconf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smartconf_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
