# Empty dependencies file for smartconf_dfs.
# This may be replaced when dependencies are built.
