file(REMOVE_RECURSE
  "CMakeFiles/smartconf_dfs.dir/namenode.cc.o"
  "CMakeFiles/smartconf_dfs.dir/namenode.cc.o.d"
  "CMakeFiles/smartconf_dfs.dir/namespace_tree.cc.o"
  "CMakeFiles/smartconf_dfs.dir/namespace_tree.cc.o.d"
  "libsmartconf_dfs.a"
  "libsmartconf_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartconf_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
