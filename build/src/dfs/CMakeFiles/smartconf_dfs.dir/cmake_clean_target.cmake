file(REMOVE_RECURSE
  "libsmartconf_dfs.a"
)
