file(REMOVE_RECURSE
  "libsmartconf_mapreduce.a"
)
