file(REMOVE_RECURSE
  "CMakeFiles/smartconf_mapreduce.dir/cluster.cc.o"
  "CMakeFiles/smartconf_mapreduce.dir/cluster.cc.o.d"
  "CMakeFiles/smartconf_mapreduce.dir/distcp.cc.o"
  "CMakeFiles/smartconf_mapreduce.dir/distcp.cc.o.d"
  "libsmartconf_mapreduce.a"
  "libsmartconf_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartconf_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
