# Empty compiler generated dependencies file for smartconf_mapreduce.
# This may be replaced when dependencies are built.
