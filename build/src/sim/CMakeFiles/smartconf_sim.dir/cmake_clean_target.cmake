file(REMOVE_RECURSE
  "libsmartconf_sim.a"
)
