file(REMOVE_RECURSE
  "CMakeFiles/smartconf_sim.dir/event_queue.cc.o"
  "CMakeFiles/smartconf_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/smartconf_sim.dir/metrics.cc.o"
  "CMakeFiles/smartconf_sim.dir/metrics.cc.o.d"
  "CMakeFiles/smartconf_sim.dir/rng.cc.o"
  "CMakeFiles/smartconf_sim.dir/rng.cc.o.d"
  "libsmartconf_sim.a"
  "libsmartconf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartconf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
