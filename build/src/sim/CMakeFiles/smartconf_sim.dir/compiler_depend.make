# Empty compiler generated dependencies file for smartconf_sim.
# This may be replaced when dependencies are built.
