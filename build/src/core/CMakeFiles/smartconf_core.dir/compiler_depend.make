# Empty compiler generated dependencies file for smartconf_core.
# This may be replaced when dependencies are built.
