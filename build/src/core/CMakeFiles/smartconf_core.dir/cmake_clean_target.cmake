file(REMOVE_RECURSE
  "libsmartconf_core.a"
)
