file(REMOVE_RECURSE
  "CMakeFiles/smartconf_core.dir/controller.cc.o"
  "CMakeFiles/smartconf_core.dir/controller.cc.o.d"
  "CMakeFiles/smartconf_core.dir/coordinator.cc.o"
  "CMakeFiles/smartconf_core.dir/coordinator.cc.o.d"
  "CMakeFiles/smartconf_core.dir/goal.cc.o"
  "CMakeFiles/smartconf_core.dir/goal.cc.o.d"
  "CMakeFiles/smartconf_core.dir/lint.cc.o"
  "CMakeFiles/smartconf_core.dir/lint.cc.o.d"
  "CMakeFiles/smartconf_core.dir/model.cc.o"
  "CMakeFiles/smartconf_core.dir/model.cc.o.d"
  "CMakeFiles/smartconf_core.dir/pole.cc.o"
  "CMakeFiles/smartconf_core.dir/pole.cc.o.d"
  "CMakeFiles/smartconf_core.dir/profiler.cc.o"
  "CMakeFiles/smartconf_core.dir/profiler.cc.o.d"
  "CMakeFiles/smartconf_core.dir/runtime.cc.o"
  "CMakeFiles/smartconf_core.dir/runtime.cc.o.d"
  "CMakeFiles/smartconf_core.dir/sensor.cc.o"
  "CMakeFiles/smartconf_core.dir/sensor.cc.o.d"
  "CMakeFiles/smartconf_core.dir/smartconf.cc.o"
  "CMakeFiles/smartconf_core.dir/smartconf.cc.o.d"
  "CMakeFiles/smartconf_core.dir/stats.cc.o"
  "CMakeFiles/smartconf_core.dir/stats.cc.o.d"
  "CMakeFiles/smartconf_core.dir/sysfile.cc.o"
  "CMakeFiles/smartconf_core.dir/sysfile.cc.o.d"
  "libsmartconf_core.a"
  "libsmartconf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartconf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
