
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/smartconf_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/controller.cc.o.d"
  "/root/repo/src/core/coordinator.cc" "src/core/CMakeFiles/smartconf_core.dir/coordinator.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/coordinator.cc.o.d"
  "/root/repo/src/core/goal.cc" "src/core/CMakeFiles/smartconf_core.dir/goal.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/goal.cc.o.d"
  "/root/repo/src/core/lint.cc" "src/core/CMakeFiles/smartconf_core.dir/lint.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/lint.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/smartconf_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/model.cc.o.d"
  "/root/repo/src/core/pole.cc" "src/core/CMakeFiles/smartconf_core.dir/pole.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/pole.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/smartconf_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/smartconf_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/sensor.cc" "src/core/CMakeFiles/smartconf_core.dir/sensor.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/sensor.cc.o.d"
  "/root/repo/src/core/smartconf.cc" "src/core/CMakeFiles/smartconf_core.dir/smartconf.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/smartconf.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/smartconf_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/stats.cc.o.d"
  "/root/repo/src/core/sysfile.cc" "src/core/CMakeFiles/smartconf_core.dir/sysfile.cc.o" "gcc" "src/core/CMakeFiles/smartconf_core.dir/sysfile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
